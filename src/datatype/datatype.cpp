#include "datatype/datatype.hpp"

#include <algorithm>
#include <cstring>

#include "common/instr.hpp"

namespace fompi::dt {

struct Datatype::Node {
  enum class Kind : std::uint8_t { basic, hvector, pieces, resized } kind;
  std::string name;
  std::size_t size = 0;       // payload bytes per element
  std::ptrdiff_t lb = 0;      // lower bound
  std::size_t extent = 0;     // span per element
  bool contig = false;

  // hvector
  int count = 0;
  int blocklen = 0;
  std::ptrdiff_t stride = 0;
  std::shared_ptr<const Node> child;

  // pieces (hindexed / struct)
  struct Piece {
    std::ptrdiff_t displ;
    int blocklen;
    std::shared_ptr<const Node> type;
  };
  std::vector<Piece> pieces;

  // Flatten cache: the minimal block list of ONE element based at byte 0,
  // computed by the single tree walk in finalize(). Nodes are immutable
  // after construction, so concurrent readers share this without
  // synchronization. flatten()/pair_layouts() replicate these blocks per
  // element instead of re-walking the tree.
  std::vector<Block> blocks;
  std::size_t span_end = 0;  // max(offset + len) over `blocks`
};

namespace {

void emit_block(std::vector<Block>& out, std::ptrdiff_t offset,
                std::size_t len) {
  if (len == 0) return;
  FOMPI_REQUIRE(offset >= 0, ErrClass::type,
                "datatype flattens to a negative offset");
  const auto off = static_cast<std::size_t>(offset);
  if (!out.empty() && out.back().offset + out.back().len == off) {
    out.back().len += len;  // merge adjacent blocks: minimal block count
    return;
  }
  out.push_back(Block{off, len});
}

}  // namespace

const Datatype::Node& Datatype::node() const {
  FOMPI_REQUIRE(node_ != nullptr, ErrClass::type, "use of an empty datatype");
  return *node_;
}

namespace {

void flatten_node(const Datatype::Node& n, std::ptrdiff_t offset,
                  std::vector<Block>& out) {
  if (n.contig) {
    emit_block(out, offset + n.lb, n.size);
    return;
  }
  switch (n.kind) {
    case Datatype::Node::Kind::basic:
      emit_block(out, offset, n.size);
      break;
    case Datatype::Node::Kind::hvector:
      for (int i = 0; i < n.count; ++i) {
        const std::ptrdiff_t block_base = offset + i * n.stride;
        for (int j = 0; j < n.blocklen; ++j) {
          flatten_node(*n.child,
                       block_base +
                           j * static_cast<std::ptrdiff_t>(n.child->extent),
                       out);
        }
      }
      break;
    case Datatype::Node::Kind::pieces:
      for (const auto& piece : n.pieces) {
        for (int j = 0; j < piece.blocklen; ++j) {
          flatten_node(
              *piece.type,
              offset + piece.displ +
                  j * static_cast<std::ptrdiff_t>(piece.type->extent),
              out);
        }
      }
      break;
    case Datatype::Node::Kind::resized:
      flatten_node(*n.child, offset, out);
      break;
  }
}

/// Computes derived metadata (size/lb/extent assumed filled), the contiguity
/// flag, and the cached one-element block list — the one tree walk this type
/// will ever perform.
void finalize(Datatype::Node& n) {
  count(Op::flatten_cache_build);
  std::vector<Block> one;
  flatten_node(n, 0, one);
  std::size_t payload = 0;
  std::size_t span = 0;
  for (const auto& b : one) {
    payload += b.len;
    span = std::max(span, b.offset + b.len);
  }
  FOMPI_REQUIRE(payload == n.size, ErrClass::internal,
                "datatype size bookkeeping mismatch");
  n.contig = one.size() == 1 && !one.empty() && one[0].offset == 0 &&
             one[0].len == n.size && n.extent == n.size && n.lb == 0;
  if (n.size == 0) n.contig = n.extent == 0 && n.lb == 0;
  n.blocks = std::move(one);
  n.span_end = span;
}

/// Stateful walk over the fragments of `count` elements of a type based at
/// `base`, replicating the node's cached block list per element. next()
/// yields maximal contiguous runs: a run absorbs any successor block that
/// starts exactly at its end (the cross-element merge flatten() performs),
/// so the produced fragments match flatten()+pair_blocks exactly.
struct LayoutCursor {
  const Block* blocks;
  std::size_t nblocks;
  std::size_t extent;
  int remaining;  // elements not yet entered
  std::size_t elem_base;

  LayoutCursor(const Datatype::Node& n, std::size_t base, int cnt)
      : blocks(n.blocks.data()),
        nblocks(n.blocks.size()),
        extent(n.extent),
        remaining(nblocks == 0 ? 0 : cnt),
        elem_base(base),
        b_(0) {}

  bool next(Block* out) {
    if (remaining <= 0) return false;
    out->offset = elem_base + blocks[b_].offset;
    out->len = blocks[b_].len;
    advance();
    while (remaining > 0 &&
           elem_base + blocks[b_].offset == out->offset + out->len) {
      out->len += blocks[b_].len;
      advance();
    }
    return true;
  }

 private:
  void advance() {
    if (++b_ == nblocks) {
      b_ = 0;
      --remaining;
      elem_base += extent;
    }
  }
  std::size_t b_;
};

}  // namespace

Datatype Datatype::basic(std::size_t bytes, std::string name) {
  FOMPI_REQUIRE(bytes > 0, ErrClass::type, "basic datatype must be nonempty");
  auto n = std::make_shared<Datatype::Node>();
  n->kind = Node::Kind::basic;
  n->name = std::move(name);
  n->size = bytes;
  n->lb = 0;
  n->extent = bytes;
  finalize(*n);
  return Datatype(std::move(n));
}

Datatype Datatype::contiguous(int count, const Datatype& element) {
  return hvector(1, count, 0, element);
}

Datatype Datatype::vector(int count, int blocklen, int stride,
                          const Datatype& element) {
  return hvector(count, blocklen,
                 static_cast<std::ptrdiff_t>(element.extent()) * stride,
                 element);
}

Datatype Datatype::hvector(int count, int blocklen,
                           std::ptrdiff_t stride_bytes,
                           const Datatype& element) {
  FOMPI_REQUIRE(count >= 0 && blocklen >= 0, ErrClass::type,
                "vector counts must be nonnegative");
  const auto& child = element.node();
  auto n = std::make_shared<Datatype::Node>();
  n->kind = Node::Kind::hvector;
  n->name = "hvector";
  n->count = count;
  n->blocklen = blocklen;
  n->stride = stride_bytes;
  n->child = element.node_;
  n->size = static_cast<std::size_t>(count) *
            static_cast<std::size_t>(blocklen) * child.size;
  if (count == 0 || blocklen == 0) {
    n->lb = 0;
    n->extent = 0;
    n->size = 0;
  } else {
    std::ptrdiff_t lo = 0, hi = 0;
    bool first = true;
    for (int i = 0; i < count; ++i) {
      const std::ptrdiff_t base = i * stride_bytes + child.lb;
      const std::ptrdiff_t lo_i = base;
      const std::ptrdiff_t hi_i =
          base + static_cast<std::ptrdiff_t>(blocklen) *
                     static_cast<std::ptrdiff_t>(child.extent);
      if (first || lo_i < lo) lo = lo_i;
      if (first || hi_i > hi) hi = hi_i;
      first = false;
    }
    n->lb = lo;
    n->extent = static_cast<std::size_t>(hi - lo);
  }
  finalize(*n);
  return Datatype(std::move(n));
}

Datatype Datatype::indexed(const std::vector<int>& blocklens,
                           const std::vector<int>& displs,
                           const Datatype& element) {
  FOMPI_REQUIRE(blocklens.size() == displs.size(), ErrClass::type,
                "indexed: blocklens/displs size mismatch");
  std::vector<std::ptrdiff_t> byte_displs(displs.size());
  const auto ext = static_cast<std::ptrdiff_t>(element.extent());
  for (std::size_t i = 0; i < displs.size(); ++i) {
    byte_displs[i] = displs[i] * ext;
  }
  return hindexed(blocklens, byte_displs, element);
}

Datatype Datatype::hindexed(const std::vector<int>& blocklens,
                            const std::vector<std::ptrdiff_t>& displs_bytes,
                            const Datatype& element) {
  FOMPI_REQUIRE(blocklens.size() == displs_bytes.size(), ErrClass::type,
                "hindexed: blocklens/displs size mismatch");
  std::vector<Datatype> types(blocklens.size(), element);
  return struct_type(blocklens, displs_bytes, types);
}

Datatype Datatype::struct_type(const std::vector<int>& blocklens,
                               const std::vector<std::ptrdiff_t>& displs_bytes,
                               const std::vector<Datatype>& types) {
  FOMPI_REQUIRE(
      blocklens.size() == displs_bytes.size() && types.size() == blocklens.size(),
      ErrClass::type, "struct: argument array size mismatch");
  auto n = std::make_shared<Datatype::Node>();
  n->kind = Node::Kind::pieces;
  n->name = "struct";
  std::ptrdiff_t lo = 0, hi = 0;
  bool first = true;
  for (std::size_t i = 0; i < blocklens.size(); ++i) {
    FOMPI_REQUIRE(blocklens[i] >= 0, ErrClass::type,
                  "struct: negative blocklen");
    const auto& t = types[i].node();
    n->pieces.push_back(
        Datatype::Node::Piece{displs_bytes[i], blocklens[i], types[i].node_});
    n->size += static_cast<std::size_t>(blocklens[i]) * t.size;
    if (blocklens[i] == 0) continue;
    const std::ptrdiff_t lo_i = displs_bytes[i] + t.lb;
    const std::ptrdiff_t hi_i =
        displs_bytes[i] + t.lb +
        static_cast<std::ptrdiff_t>(blocklens[i]) *
            static_cast<std::ptrdiff_t>(t.extent);
    if (first || lo_i < lo) lo = lo_i;
    if (first || hi_i > hi) hi = hi_i;
    first = false;
  }
  n->lb = first ? 0 : lo;
  n->extent = first ? 0 : static_cast<std::size_t>(hi - lo);
  finalize(*n);
  return Datatype(std::move(n));
}

Datatype Datatype::resized(const Datatype& base, std::ptrdiff_t lb,
                           std::size_t extent) {
  const auto& child = base.node();
  auto n = std::make_shared<Datatype::Node>();
  n->kind = Node::Kind::resized;
  n->name = "resized(" + child.name + ")";
  n->child = base.node_;
  n->size = child.size;
  n->lb = lb;
  n->extent = extent;
  finalize(*n);
  return Datatype(std::move(n));
}

Datatype Datatype::subarray(const std::vector<int>& sizes,
                            const std::vector<int>& subsizes,
                            const std::vector<int>& starts,
                            const Datatype& element) {
  const std::size_t ndims = sizes.size();
  FOMPI_REQUIRE(ndims >= 1 && subsizes.size() == ndims &&
                    starts.size() == ndims,
                ErrClass::type, "subarray: dimension mismatch");
  for (std::size_t d = 0; d < ndims; ++d) {
    FOMPI_REQUIRE(sizes[d] >= 1 && subsizes[d] >= 1 &&
                      subsizes[d] <= sizes[d] && starts[d] >= 0 &&
                      starts[d] + subsizes[d] <= sizes[d],
                  ErrClass::type, "subarray: block out of bounds");
  }
  const auto ext = static_cast<std::ptrdiff_t>(element.extent());
  // Row-major strides: elements of dimension d are prod(sizes[d+1..]) apart.
  std::vector<std::ptrdiff_t> stride(ndims);
  stride[ndims - 1] = ext;
  for (std::size_t d = ndims - 1; d > 0; --d) {
    stride[d - 1] = stride[d] * sizes[d];
  }
  // Innermost dimension is a contiguous run; outer dimensions wrap it with
  // strided vectors.
  Datatype t = contiguous(subsizes[ndims - 1], element);
  for (std::size_t d = ndims - 1; d > 0; --d) {
    t = hvector(subsizes[d - 1], 1, stride[d - 1], t);
  }
  std::ptrdiff_t displ = 0;
  for (std::size_t d = 0; d < ndims; ++d) displ += starts[d] * stride[d];
  t = hindexed({1}, {displ}, t);
  // Extent covers the full array so count > 1 walks consecutive arrays.
  return resized(t, 0, static_cast<std::size_t>(stride[0] * sizes[0]));
}

std::size_t Datatype::size() const { return node().size; }
std::size_t Datatype::extent() const { return node().extent; }
std::ptrdiff_t Datatype::lb() const { return node().lb; }
bool Datatype::is_contiguous() const { return node().contig; }
std::size_t Datatype::block_count() const { return node().blocks.size(); }
std::size_t Datatype::span_end() const { return node().span_end; }

std::string Datatype::describe() const {
  const auto& n = node();
  return n.name + "{size=" + std::to_string(n.size) +
         ",extent=" + std::to_string(n.extent) + "}";
}

void Datatype::flatten(std::size_t base, int count,
                       std::vector<Block>& out) const {
  const auto& n = node();
  FOMPI_REQUIRE(count >= 0, ErrClass::type, "flatten: negative count");
  fompi::count(Op::flatten_cache_hit);
  if (n.contig) {
    emit_block(out, static_cast<std::ptrdiff_t>(base),
               static_cast<std::size_t>(count) * n.size);
    return;
  }
  // Replicate the cached one-element list; emit_block re-merges across
  // element boundaries exactly like the tree walk did.
  for (int e = 0; e < count; ++e) {
    const std::size_t elem_base = base + static_cast<std::size_t>(e) * n.extent;
    for (const Block& b : n.blocks) {
      emit_block(out, static_cast<std::ptrdiff_t>(elem_base + b.offset),
                 b.len);
    }
  }
}

std::size_t Datatype::pack(const void* src, int count, void* dst) const {
  const auto& n = node();
  FOMPI_REQUIRE(count >= 0, ErrClass::type, "pack: negative count");
  fompi::count(Op::flatten_cache_hit);
  auto* out = static_cast<std::byte*>(dst);
  const auto* in = static_cast<const std::byte*>(src);
  std::size_t pos = 0;
  LayoutCursor cur(n, 0, count);
  Block b;
  while (cur.next(&b)) {
    std::memcpy(out + pos, in + b.offset, b.len);
    pos += b.len;
  }
  return pos;
}

std::size_t Datatype::unpack(const void* src, int count, void* dst) const {
  const auto& n = node();
  FOMPI_REQUIRE(count >= 0, ErrClass::type, "unpack: negative count");
  fompi::count(Op::flatten_cache_hit);
  const auto* in = static_cast<const std::byte*>(src);
  auto* out = static_cast<std::byte*>(dst);
  std::size_t pos = 0;
  LayoutCursor cur(n, 0, count);
  Block b;
  while (cur.next(&b)) {
    std::memcpy(out + b.offset, in + pos, b.len);
    pos += b.len;
  }
  return pos;
}

void pair_blocks(const std::vector<Block>& origin,
                 const std::vector<Block>& target, FragmentRef fn) {
  std::size_t oi = 0, ti = 0;   // block indices
  std::size_t opos = 0, tpos = 0;  // consumed bytes within current block
  while (oi < origin.size() && ti < target.size()) {
    const std::size_t orem = origin[oi].len - opos;
    const std::size_t trem = target[ti].len - tpos;
    const std::size_t frag = std::min(orem, trem);
    fn(origin[oi].offset + opos, target[ti].offset + tpos, frag);
    opos += frag;
    tpos += frag;
    if (opos == origin[oi].len) {
      ++oi;
      opos = 0;
    }
    if (tpos == target[ti].len) {
      ++ti;
      tpos = 0;
    }
  }
  FOMPI_REQUIRE(oi == origin.size() && ti == target.size(), ErrClass::type,
                "origin and target datatypes carry different payload sizes");
}

void pair_layouts(const Datatype& otype, int ocount, const Datatype& ttype,
                  int tcount, std::size_t tdisp, FragmentRef fn) {
  const Datatype::Node& on = otype.node();
  const Datatype::Node& tn = ttype.node();
  FOMPI_REQUIRE(ocount >= 0 && tcount >= 0, ErrClass::type,
                "pair_layouts: negative count");
  FOMPI_REQUIRE(on.size * static_cast<std::size_t>(ocount) ==
                    tn.size * static_cast<std::size_t>(tcount),
                ErrClass::type,
                "origin and target datatypes carry different payload sizes");
  count(Op::flatten_cache_hit, 2);
  LayoutCursor ocur(on, 0, ocount);
  LayoutCursor tcur(tn, tdisp, tcount);
  Block ob{0, 0}, tb{0, 0};
  bool ohave = ocur.next(&ob), thave = tcur.next(&tb);
  std::size_t opos = 0, tpos = 0;
  while (ohave && thave) {
    const std::size_t frag = std::min(ob.len - opos, tb.len - tpos);
    fn(ob.offset + opos, tb.offset + tpos, frag);
    opos += frag;
    tpos += frag;
    if (opos == ob.len) {
      ohave = ocur.next(&ob);
      opos = 0;
    }
    if (tpos == tb.len) {
      thave = tcur.next(&tb);
      tpos = 0;
    }
  }
}

}  // namespace fompi::dt

// Simulated RDMA NIC ("DMAPP" stand-in) and intra-node direct access
// ("XPMEM" stand-in).
//
// Operation taxonomy mirrors DMAPP exactly (Sec 2.1 of the paper):
//   - blocking put/get/amo,
//   - explicit nonblocking (returns a handle completed with test/wait),
//   - implicit nonblocking (completed only by bulk completion, gsync()).
// Puts and gets move arbitrary byte ranges; AMOs operate on 8-byte words.
//
// Two orthogonal simulation knobs (see network_model.hpp):
//   Injection::model  — charge the Gemini cost model by busy-waiting, so
//                       real-time benchmarks reproduce the paper's shapes;
//   Delivery::deferred — inter-node data becomes visible only when the
//                       origin completes the op (weakest legal RDMA
//                       behaviour), optionally applied in shuffled order.
//                       This is the failure-injection mode used by tests to
//                       catch code that assumes eager remote visibility.
//
// Issue fast path (the paper's central claim is that this path adds no
// software overhead; see DESIGN.md "fast path"):
//   - rkey resolution goes through a per-NIC direct-mapped cache validated
//     against the registry's generation counter — the registry's shared
//     lock is taken once per (rkey, registration epoch), not once per op;
//   - completion state lives in a slab/free-list pool indexed by the
//     handle's low bits (high bits carry an ABA tag), so issue/test/wait/
//     gsync do no map operations;
//   - deferred put payloads of up to PendingOp::kInlineStage bytes stage
//     into a fixed in-struct buffer; only larger payloads touch a spill
//     vector whose capacity is recycled with the slot.
//   Steady state performs zero heap allocations per op; every pool or
//   spill growth is counted as Op::pool_grow (asserted by tests/bench).
//
// A Nic is owned and driven by exactly one rank thread (not thread-safe);
// the memory it targets is shared, with AMO words accessed via CPU atomics.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "rdma/amo.hpp"
#include "rdma/network_model.hpp"
#include "rdma/region.hpp"

namespace fompi::rdma {

class Domain;

/// Completion handle for explicit nonblocking operations. Handle 0 denotes
/// an operation that completed at issue (fast path). Nonzero handles encode
/// a pool slot index in the low 32 bits and a nonzero ABA tag in the high
/// 32 bits, so a retired handle is detected instead of aliasing a recycled
/// slot.
using Handle = std::uint64_t;
inline constexpr Handle kDoneHandle = 0;

/// One fragment of a vectored transfer (one chained FMA descriptor).
/// Offsets are relative to the op's local base pointer and to the op's
/// remote base offset, so one rkey resolution and one bounds check cover
/// the whole vector.
struct Frag {
  std::size_t local_off;
  std::size_t remote_off;
  std::size_t len;
};

class Nic {
 public:
  Nic(Domain& domain, int rank);
  Nic(const Nic&) = delete;
  Nic& operator=(const Nic&) = delete;

  int rank() const noexcept { return rank_; }

  // --- explicit nonblocking ------------------------------------------------
  Handle put_nb(int target, const RegionDesc& rd, std::size_t offset,
                const void* src, std::size_t len);
  Handle get_nb(int target, const RegionDesc& rd, std::size_t offset,
                void* dst, std::size_t len);
  /// If `fetch_out` is nonnull it receives the previous value once the
  /// operation completes.
  Handle amo_nb(int target, const RegionDesc& rd, std::size_t offset,
                AmoOp op, std::uint64_t operand, std::uint64_t compare,
                std::uint64_t* fetch_out);

  // --- implicit nonblocking (bulk-completed by gsync) ----------------------
  void put_nbi(int target, const RegionDesc& rd, std::size_t offset,
               const void* src, std::size_t len);
  void get_nbi(int target, const RegionDesc& rd, std::size_t offset,
               void* dst, std::size_t len);
  void amo_nbi(int target, const RegionDesc& rd, std::size_t offset, AmoOp op,
               std::uint64_t operand, std::uint64_t compare = 0);

  // --- vectored (multi-fragment, single doorbell) --------------------------
  // The NIC analogue of chained Gemini FMA descriptors: every fragment of
  // `frags` moves in one operation that charges the software/doorbell
  // overhead once plus a per-fragment chain cost on the wire, and completes
  // through ONE handle (or one implicit op). `base_off` / `span_len` bound
  // the remote bytes the vector touches: rkey resolution and the range
  // check happen once, not per fragment. Fragment offsets are relative to
  // `local_base` and `base_off`.
  Handle put_nbv(int target, const RegionDesc& rd, std::size_t base_off,
                 std::size_t span_len, const void* local_base,
                 const Frag* frags, std::size_t nfrags);
  Handle get_nbv(int target, const RegionDesc& rd, std::size_t base_off,
                 std::size_t span_len, void* local_base, const Frag* frags,
                 std::size_t nfrags);
  void put_nbiv(int target, const RegionDesc& rd, std::size_t base_off,
                std::size_t span_len, const void* local_base,
                const Frag* frags, std::size_t nfrags);
  void get_nbiv(int target, const RegionDesc& rd, std::size_t base_off,
                std::size_t span_len, void* local_base, const Frag* frags,
                std::size_t nfrags);

  // --- blocking ------------------------------------------------------------
  void put(int target, const RegionDesc& rd, std::size_t offset,
           const void* src, std::size_t len);
  void get(int target, const RegionDesc& rd, std::size_t offset, void* dst,
           std::size_t len);
  std::uint64_t amo(int target, const RegionDesc& rd, std::size_t offset,
                    AmoOp op, std::uint64_t operand,
                    std::uint64_t compare = 0);

  // --- completion ------------------------------------------------------------
  /// True (and retires the handle) once the operation completed.
  /// Throws on a stale handle or a failed op (legacy errors-are-fatal API).
  bool test(Handle h);
  /// Blocks until the operation completed; retires the handle. Throws a
  /// typed Error (timeout/cq/peer_dead) if the op retired with a failure.
  void wait(Handle h);
  /// Bulk completion of ALL outstanding operations of this NIC (DMAPP
  /// gsync). Guarantees remote visibility of every put/amo issued so far.
  /// Throws if any implicit op retired with a failure status.
  void gsync();

  // --- error-returning completion (MPI_ERRORS_RETURN analogue) ---------------
  /// Nonblocking completion probe. Returns true once the handle is retired;
  /// *out then holds the op's final status (ok or a typed failure). A stale
  /// or double-waited handle retires immediately with OpStatus::retired
  /// instead of aliasing a recycled slot or throwing.
  bool test_status(Handle h, OpStatus* out);
  /// Blocking completion; returns the op's typed final status. Never
  /// throws for fault-model outcomes (stale handle -> OpStatus::retired).
  OpStatus wait_status(Handle h);
  /// Bulk completion; returns ok or the first implicit-op failure recorded
  /// since the previous gsync (and clears it). Flushes an open batch first,
  /// so every core-layer sync point (flush/fence/unlock/complete all route
  /// through gsync) preserves MPI RMA completion semantics under batching.
  OpStatus gsync_status();

  // --- progress-engine hooks (completion -> fiber wakeup) --------------------
  /// Absolute modeled completion time (ns) of an explicit handle, for
  /// suspend-on-wait waiters: a parked fiber sleeps until this deadline
  /// instead of spinning in wait_status. Flushes a pending batch first (an
  /// op cannot complete behind an unrung doorbell). Returns 0 when the
  /// handle can retire right now — already complete, failed at issue,
  /// stale, or running under Injection::none.
  std::uint64_t completion_deadline(Handle h);
  /// Modeled completion time of everything issued so far (what gsync's
  /// bulk wait targets); 0 under Injection::none. An epoch waiter parks on
  /// this and re-arms if more traffic extended it.
  std::uint64_t quiesce_deadline() const noexcept {
    return latest_complete_at_;
  }

  // --- throughput mode: doorbell batching ------------------------------------
  /// Opens an explicit batch scope: subsequent batchable ops (FMA-sized,
  /// i.e. below the batch cutoff) accumulate into one chained descriptor
  /// list and ring a single doorbell at batch_flush(). Idempotent — an
  /// auto-batch scope already open is adopted. Ops at or above the cutoff
  /// bypass the batch (BTE transfers own their doorbell).
  void batch_begin();
  /// Rings the doorbell for the open batch (explicit or auto), charging
  /// the injection overhead once plus batch_chain_ns per extra descriptor
  /// (divided round-robin across the configured channels), and assigns
  /// every batched op its modeled completion time. No-op when no batch is
  /// open. Also invoked implicitly by gsync and by test/wait on a
  /// batch-pending handle.
  void batch_flush();
  /// True while a batch scope (explicit or auto) is open.
  bool batch_active() const noexcept { return batch_open_; }
  /// Descriptors enqueued in the open batch.
  std::size_t batch_depth() const noexcept { return batch_ndesc_; }
  /// Doorbells rung so far (each covers >= 1 descriptors).
  std::uint64_t doorbells_rung() const noexcept { return doorbells_; }
  /// This NIC's (possibly adaptively retuned) cost model. Starts as a copy
  /// of DomainConfig::model with NicConfig overrides applied.
  const NetworkModel& model() const noexcept { return model_; }
  /// Adaptive retunes performed so far.
  std::uint64_t retunes() const noexcept { return retunes_; }

  /// Local memory fence (x86 mfence equivalent); orders CPU stores for the
  /// intra-node path.
  void local_fence();

  /// Charges `ns` of modeled time to this rank for work the NIC did not
  /// perform itself (e.g. the collectives' shared-memory copy fallback, the
  /// moral equivalent of an XPMEM attach + memcpy). Scaled by time_scale
  /// and folded into latest_complete_at_; a no-op under Injection::none.
  void charge_model_ns(double ns);

  /// Explicit nonblocking operations with a live (unretired) handle.
  std::size_t explicit_outstanding() const noexcept { return explicit_live_; }
  /// Implicit operations issued since the last gsync. Counts every
  /// implicit op — including ones whose data moved at issue — because
  /// DMAPP-style implicit ops are only *completed* by bulk sync.
  std::size_t implicit_outstanding() const noexcept {
    return static_cast<std::size_t>(implicit_live_);
  }
  /// Outstanding (not yet completed) operation count: explicit + implicit.
  std::size_t outstanding() const noexcept {
    return explicit_outstanding() + implicit_outstanding();
  }

  // --- fault plan introspection (tests / diagnostics) ------------------------
  /// One scheduled transient fault: fires when this NIC issues its
  /// at_op-th operation, injecting `kind` for `repeats` consecutive
  /// (re)issues of that op.
  struct FaultSite {
    std::uint64_t at_op = 0;
    FaultKind kind = FaultKind::none;
    int repeats = 1;
  };
  /// The precomputed per-rank schedule (empty when the plan is disabled).
  /// Deterministic: a pure function of (plan.seed, rank).
  const std::vector<FaultSite>& fault_schedule() const noexcept {
    return fault_sched_;
  }
  /// Operations issued by this NIC so far (fault-plan op index).
  std::uint64_t issued_ops() const noexcept { return issued_ops_; }

 private:
  struct PendingOp {
    enum class Kind : std::uint8_t { put, get, amo };
    /// Inline staging capacity: covers every protocol-flag word and
    /// notified-access put the library issues on its own behalf.
    static constexpr std::size_t kInlineStage = 64;

    Kind kind = Kind::put;
    bool implicit = false;
    bool applied = false;  // data movement already performed
    bool batch_pending = false;  // enqueued behind an unrung doorbell
    std::byte* remote = nullptr;
    void* local = nullptr;  // get destination
    std::size_t len = 0;
    AmoOp aop = AmoOp::read;
    std::uint64_t operand = 0, compare = 0;
    std::uint64_t* fetch_out = nullptr;
    std::uint64_t complete_at = 0;  // ns timestamp when model says done

    std::size_t staged_len = 0;  // deferred put payload length
    OpStatus status = OpStatus::ok;  // typed failure, set at issue time
    alignas(8) std::array<std::byte, kInlineStage> stage_{};
    std::vector<std::byte> spill_;  // payloads > kInlineStage only
    std::vector<Frag> frags_;  // vectored-op fragments (capacity recycled)

    /// Copies a deferred put payload; spills to the heap only above
    /// kInlineStage, reusing the slot's previous spill capacity.
    void stage_payload(const void* src, std::size_t n);
    /// Gathers the fragments of a deferred vectored put into the staging
    /// buffer (fragment payloads land back-to-back) and records the
    /// fragment list; capacity is recycled with the slot.
    void stage_vector(const std::byte* local_base, const Frag* frags,
                      std::size_t nfrags, std::size_t total, bool gather);
    const std::byte* staged_data() const noexcept {
      return staged_len <= kInlineStage ? stage_.data() : spill_.data();
    }
    /// Clears per-op state but keeps spill/fragment capacity for recycling.
    void reset() noexcept {
      applied = false;
      batch_pending = false;
      fetch_out = nullptr;
      staged_len = 0;
      status = OpStatus::ok;
      complete_at = 0;
      frags_.clear();
    }
  };

  /// One slab slot: the pooled op plus free-list / liveness bookkeeping.
  struct Slot {
    PendingOp op;
    std::uint32_t tag = 1;  // never 0: 0-tagged handles are always invalid
    std::uint32_t next_free = 0;
    bool live = false;
  };

  /// Per-NIC direct-mapped rkey cache entry (see resolve_cached).
  struct RkeyEntry {
    std::uint64_t rkey = 0;  // 0 = empty
    std::uint64_t gen = 0;   // registry generation the snapshot was taken at
    std::byte* base = nullptr;
    std::size_t size = 0;
    int owner = -1;
  };
  static constexpr std::size_t kRkeyCacheSize = 64;  // power of two
  static_assert((kRkeyCacheSize & (kRkeyCacheSize - 1)) == 0);

  /// Plain-data description of one operation, passed by the public entry
  /// points; the fast path never materializes a PendingOp.
  struct OpReq {
    PendingOp::Kind kind;
    const void* src = nullptr;  // put source
    void* dst = nullptr;        // get destination
    std::size_t len = 0;
    AmoOp aop = AmoOp::read;
    std::uint64_t operand = 0, compare = 0;
    std::uint64_t* fetch_out = nullptr;
  };

  bool inter_node(int target) const noexcept;
  /// Epoch-validated cached resolve; falls back to a locked registry
  /// snapshot only when the cache entry is absent or the registration
  /// generation moved. Raises exactly like RegionRegistry::resolve.
  std::byte* resolve_cached(std::uint64_t rkey, int expected_owner,
                            std::size_t offset, std::size_t len);
  /// Issues one op; returns kDoneHandle when it completed at issue.
  Handle issue(int target, const RegionDesc& rd, std::size_t offset,
               const OpReq& req, bool implicit);
  /// Issues one vectored (multi-fragment) op behind a single doorbell.
  Handle issue_vec(int target, const RegionDesc& rd, std::size_t base_off,
                   std::size_t span_len, PendingOp::Kind kind,
                   void* local_base, const Frag* frags, std::size_t nfrags,
                   bool implicit);
  void apply(PendingOp& op);
  /// Applies an op straight from its request, with no pooled record.
  void apply_direct(const OpReq& req, std::byte* remote);
  /// Flight-recorder completion event at explicit-handle retirement.
  void trace_retire(const PendingOp& op) noexcept;
  void wait_model_time(std::uint64_t complete_at);

  /// Per-issue fault-plan gate: advances the op index, fires the kill/hang
  /// schedule, runs the bounded retransmission loop for a scheduled
  /// transient fault, and detects a dead target. Reads (`is_read`) of a
  /// dead rank's frozen memory image still succeed — that is what lets
  /// survivors inspect a dead peer's protocol words to revoke its locks —
  /// while writes and mutating AMOs retire with peer_dead. Returns the
  /// status the op must retire with (ok = proceed) and a latency
  /// multiplier.
  struct FaultVerdict {
    OpStatus status = OpStatus::ok;
    double latency_scale = 1.0;
  };
  /// Armed-plan fast gate (inline, defined after Domain below): advances
  /// the op index and falls through in two compares when nothing can fire
  /// at this index, so an armed-but-idle plan stays within noise of the
  /// disarmed path (bench_fastpath's put8_blocking_fault_armed_idle case).
  FaultVerdict pre_issue_fault(int target, bool is_read);
  /// Out-of-line worker: kill/hang schedule, dead-target detection, and
  /// the bounded retransmission loop for a scheduled transient fault.
  FaultVerdict pre_issue_fault_slow(int target, bool is_read,
                                    std::uint64_t my_op);
  /// Recomputes next_fault_op_ = earliest op index at which the kill or
  /// the next unconsumed schedule entry can fire (~0 when neither can).
  void update_next_fault_op() noexcept;
  /// Builds a failed explicit handle (no data movement, no model time).
  Handle make_failed_handle(OpStatus st, bool implicit);

  // --- throughput mode internals --------------------------------------------
  /// One descriptor of the open batch. Pool entries are referenced by index
  /// (slab_/implicit_ops_ may reallocate between enqueue and flush); ops
  /// with no pooled record (immediate implicit) carry only their latency.
  struct BatchEntry {
    std::uint32_t slot = kNoSlot2;      ///< explicit slab index, or none
    std::uint32_t implicit_idx = kNoSlot2;  ///< implicit pool index, or none
    std::uint64_t lat_ns = 0;           ///< modeled op latency (scaled)
    static constexpr std::uint32_t kNoSlot2 = ~std::uint32_t{0};
  };
  /// True when the open (or to-be-opened auto) batch accepts this op: a
  /// batch scope is available and the op is FMA-sized (below the cutoff).
  bool batch_accepts(std::size_t len) noexcept;
  /// Records one op into the open batch (model-time bookkeeping only; the
  /// caller has already done counters/data movement).
  void batch_enqueue(const BatchEntry& e, bool inter);
  /// Adaptive tuner: one histogram bump per op plus a periodic retune.
  void note_op_size(std::size_t len);
  void retune();

  // Slab pool management (explicit handles).
  std::uint32_t acquire_slot();
  void release_slot(std::uint32_t index);
  Slot* lookup(Handle h);
  static Handle encode(std::uint32_t index, std::uint32_t tag) noexcept {
    return (static_cast<Handle>(tag) << 32) | index;
  }

  PendingOp& acquire_implicit();

  Domain& domain_;
  int rank_;
  Rng rng_;

  std::array<RkeyEntry, kRkeyCacheSize> rkey_cache_{};

  // Explicit-handle pool: slab + intrusive LIFO free list.
  std::vector<Slot> slab_;
  std::uint32_t free_head_ = kNoSlot;
  std::size_t explicit_live_ = 0;
  static constexpr std::uint32_t kNoSlot = ~std::uint32_t{0};

  // Implicit-op pool: entries [0, implicit_count_) are live; gsync resets
  // the count but keeps the entries (and their spill capacity).
  std::vector<PendingOp> implicit_ops_;
  std::size_t implicit_count_ = 0;
  std::uint64_t implicit_live_ = 0;  // incl. ops whose data moved at issue

  std::vector<PendingOp*> drain_scratch_;  // gsync working set, recycled
  std::uint64_t latest_complete_at_ = 0;   // max completion time seen

  // Throughput mode. The NIC keeps its own model copy so the adaptive
  // tuner can move protocol thresholds without touching the (shared,
  // immutable) DomainConfig. With the default NicConfig the issue path
  // pays one extra predictable branch (batchable_ is false).
  NetworkModel model_;       // per-NIC copy; adaptive retunes mutate it
  int channels_ = 1;         // cached NicConfig.channels
  bool auto_batch_ = false;  // cached NicConfig.auto_batch
  bool adaptive_ = false;    // cached NicConfig.adaptive
  std::size_t batch_capacity_ = 64;
  std::size_t batch_cutoff_ = 0;  // ops >= cutoff bypass the batch
  bool batch_cutoff_pinned_ = false;  // cutoff overridden: retune keeps it
  bool batch_open_ = false;
  bool batch_explicit_ = false;  // opened by batch_begin (vs auto)
  bool batch_inter_ = false;     // any inter-node descriptor enqueued
  std::size_t batch_ndesc_ = 0;
  std::vector<BatchEntry> batch_entries_;  // capacity recycled across flushes
  std::uint64_t doorbells_ = 0;

  // Adaptive tuner state: log2 op-size histogram, decayed at each retune.
  std::array<std::uint64_t, 48> size_hist_{};
  std::uint64_t ops_since_retune_ = 0;
  std::uint64_t adapt_period_ = 1024;
  std::uint64_t retunes_ = 0;

  // Fault plan state. fault_armed_ is the ONLY fault-path check on the
  // fault-free issue path (one branch); everything below it is untouched
  // when the plan is disabled.
  bool fault_armed_ = false;
  std::vector<FaultSite> fault_sched_;  // sorted by at_op
  std::size_t fault_next_ = 0;          // next unfired schedule entry
  std::uint64_t next_fault_op_ = ~std::uint64_t{0};  // fast-gate threshold
  std::uint64_t issued_ops_ = 0;        // fault-plan op index
  std::uint64_t implicit_failed_ = 0;   // failed implicit ops since gsync
  OpStatus implicit_fail_status_ = OpStatus::ok;  // first such failure
};

struct DomainConfig {
  int nranks = 1;
  /// Ranks per simulated node; 0 means all ranks share one node (pure
  /// "XPMEM"), 1 means every rank is its own node (pure "DMAPP").
  int ranks_per_node = 0;
  Injection inject = Injection::none;
  Delivery delivery = Delivery::immediate;
  /// With deferred delivery, apply drained ops in shuffled order to model
  /// the network's lack of ordering guarantees.
  bool shuffle_deferred = false;
  /// Multiplier on all injected model times (1.0 = realistic).
  double time_scale = 1.0;
  NetworkModel model{};
  /// Throughput mode: doorbell batching, channel striping, adaptive
  /// thresholds (defaults preserve the latency-tuned single-channel path).
  NicConfig nic{};
  std::uint64_t seed = 42;
  /// Seeded deterministic fault injection (disabled by default; when
  /// disabled the issue path pays exactly one extra branch).
  FaultPlan fault{};
};

/// One RDMA domain: the registry plus one NIC per rank.
class Domain {
 public:
  explicit Domain(DomainConfig cfg);

  int nranks() const noexcept { return cfg_.nranks; }
  int node_of(int rank) const noexcept {
    return cfg_.ranks_per_node <= 0 ? 0 : rank / cfg_.ranks_per_node;
  }
  bool same_node(int a, int b) const noexcept {
    return node_of(a) == node_of(b);
  }

  RegionRegistry& registry() noexcept { return registry_; }
  const DomainConfig& config() const noexcept { return cfg_; }
  Nic& nic(int rank);

  /// Invoked on every iteration of an unbounded NIC model-time spin
  /// (wait/gsync); the runtime installs a hook that raises when a peer
  /// rank failed, so a dead fleet aborts instead of hanging (CLAUDE.md).
  using ProgressHook = void (*)(void* arg);
  void set_progress_hook(ProgressHook hook, void* arg) noexcept {
    progress_hook_ = hook;
    progress_arg_ = arg;
  }
  void progress_check() const {
    if (progress_hook_ != nullptr) progress_hook_(progress_arg_);
  }

  // --- liveness (fail-stop fault model) -------------------------------------
  /// True while `rank` has not been killed by the fault plan. The fail-stop
  /// model: a dead rank's memory stays mapped and *readable* (survivors can
  /// inspect its frozen protocol words, as in checkpoint-free recovery for
  /// one-sided models), but writes and mutating AMOs targeting it retire
  /// with OpStatus::peer_dead.
  bool alive(int rank) const noexcept {
    return !dead_[static_cast<std::size_t>(rank)].load(
        std::memory_order_acquire);
  }
  /// Marks `rank` dead and advances the death epoch (idempotent).
  void mark_dead(int rank) noexcept {
    if (!dead_[static_cast<std::size_t>(rank)].exchange(
            true, std::memory_order_acq_rel)) {
      death_epoch_.fetch_add(1, std::memory_order_acq_rel);
    }
  }
  /// Number of rank deaths so far; liveness-aware spin loops re-probe
  /// their peer only when this moves (cheap monotonic epoch).
  std::uint64_t death_epoch() const noexcept {
    return death_epoch_.load(std::memory_order_acquire);
  }

 private:
  DomainConfig cfg_;
  RegionRegistry registry_;
  std::vector<std::unique_ptr<Nic>> nics_;
  ProgressHook progress_hook_ = nullptr;
  void* progress_arg_ = nullptr;
  // One flag per rank, true = dead. unique_ptr array: atomics can't live
  // in a resizable vector.
  std::unique_ptr<std::atomic<bool>[]> dead_;
  std::atomic<std::uint64_t> death_epoch_{0};
};

/// Armed-plan fast gate. Defined here (after Domain) so the idle case —
/// nothing scheduled at this index, no deaths in the fleet — is a handful
/// of inlined loads and branches at every issue site instead of a call
/// into the fault machinery. next_fault_op_ is maintained conservatively:
/// it never exceeds the true next interesting index, so taking the slow
/// path spuriously is possible but missing a site is not.
inline Nic::FaultVerdict Nic::pre_issue_fault(int target, bool is_read) {
  const std::uint64_t my_op = issued_ops_++;
  if (my_op >= next_fault_op_ ||
      (!is_read && domain_.death_epoch() != 0)) {
    return pre_issue_fault_slow(target, is_read, my_op);
  }
  return {};
}

}  // namespace fompi::rdma

// Simulated RDMA NIC ("DMAPP" stand-in) and intra-node direct access
// ("XPMEM" stand-in).
//
// Operation taxonomy mirrors DMAPP exactly (Sec 2.1 of the paper):
//   - blocking put/get/amo,
//   - explicit nonblocking (returns a handle completed with test/wait),
//   - implicit nonblocking (completed only by bulk completion, gsync()).
// Puts and gets move arbitrary byte ranges; AMOs operate on 8-byte words.
//
// Two orthogonal simulation knobs (see network_model.hpp):
//   Injection::model  — charge the Gemini cost model by busy-waiting, so
//                       real-time benchmarks reproduce the paper's shapes;
//   Delivery::deferred — inter-node data becomes visible only when the
//                       origin completes the op (weakest legal RDMA
//                       behaviour), optionally applied in shuffled order.
//                       This is the failure-injection mode used by tests to
//                       catch code that assumes eager remote visibility.
//
// A Nic is owned and driven by exactly one rank thread (not thread-safe);
// the memory it targets is shared, with AMO words accessed via CPU atomics.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/rng.hpp"
#include "rdma/amo.hpp"
#include "rdma/network_model.hpp"
#include "rdma/region.hpp"

namespace fompi::rdma {

class Domain;

/// Completion handle for explicit nonblocking operations. Handle 0 denotes
/// an operation that completed at issue (fast path).
using Handle = std::uint64_t;
inline constexpr Handle kDoneHandle = 0;

class Nic {
 public:
  Nic(Domain& domain, int rank);
  Nic(const Nic&) = delete;
  Nic& operator=(const Nic&) = delete;

  int rank() const noexcept { return rank_; }

  // --- explicit nonblocking ------------------------------------------------
  Handle put_nb(int target, const RegionDesc& rd, std::size_t offset,
                const void* src, std::size_t len);
  Handle get_nb(int target, const RegionDesc& rd, std::size_t offset,
                void* dst, std::size_t len);
  /// If `fetch_out` is nonnull it receives the previous value once the
  /// operation completes.
  Handle amo_nb(int target, const RegionDesc& rd, std::size_t offset,
                AmoOp op, std::uint64_t operand, std::uint64_t compare,
                std::uint64_t* fetch_out);

  // --- implicit nonblocking (bulk-completed by gsync) ----------------------
  void put_nbi(int target, const RegionDesc& rd, std::size_t offset,
               const void* src, std::size_t len);
  void get_nbi(int target, const RegionDesc& rd, std::size_t offset,
               void* dst, std::size_t len);
  void amo_nbi(int target, const RegionDesc& rd, std::size_t offset, AmoOp op,
               std::uint64_t operand, std::uint64_t compare = 0);

  // --- blocking ------------------------------------------------------------
  void put(int target, const RegionDesc& rd, std::size_t offset,
           const void* src, std::size_t len);
  void get(int target, const RegionDesc& rd, std::size_t offset, void* dst,
           std::size_t len);
  std::uint64_t amo(int target, const RegionDesc& rd, std::size_t offset,
                    AmoOp op, std::uint64_t operand,
                    std::uint64_t compare = 0);

  // --- completion ------------------------------------------------------------
  /// True (and retires the handle) once the operation completed.
  bool test(Handle h);
  /// Blocks until the operation completed; retires the handle.
  void wait(Handle h);
  /// Bulk completion of ALL outstanding operations of this NIC (DMAPP
  /// gsync). Guarantees remote visibility of every put/amo issued so far.
  void gsync();
  /// Local memory fence (x86 mfence equivalent); orders CPU stores for the
  /// intra-node path.
  void local_fence();

  /// Outstanding (not yet completed) operation count.
  std::size_t outstanding() const noexcept {
    return pending_.size() + static_cast<std::size_t>(implicit_live_);
  }

 private:
  struct PendingOp {
    enum class Kind : std::uint8_t { put, get, amo } kind;
    void* remote = nullptr;
    void* local = nullptr;  // get destination
    std::size_t len = 0;
    std::vector<std::byte> staged;  // deferred put payload
    AmoOp aop = AmoOp::read;
    std::uint64_t operand = 0, compare = 0;
    std::uint64_t* fetch_out = nullptr;
    std::uint64_t complete_at = 0;  // ns timestamp when model says done
    bool implicit = false;
    bool applied = false;  // data movement already performed
  };

  bool inter_node(int target) const noexcept;
  /// Issues one op; returns kDoneHandle when it completed at issue.
  Handle issue(int target, const RegionDesc& rd, std::size_t offset,
               PendingOp op, bool implicit);
  void apply(PendingOp& op);
  void wait_model_time(std::uint64_t complete_at);

  Domain& domain_;
  int rank_;
  Rng rng_;
  std::uint64_t next_handle_ = 1;
  std::unordered_map<Handle, PendingOp> pending_;
  /// Implicit inter-node ops kept for deferred application / completion time.
  std::vector<PendingOp> implicit_ops_;
  std::uint64_t implicit_live_ = 0;       // count incl. fast-path ops
  std::uint64_t latest_complete_at_ = 0;  // max completion time seen
};

struct DomainConfig {
  int nranks = 1;
  /// Ranks per simulated node; 0 means all ranks share one node (pure
  /// "XPMEM"), 1 means every rank is its own node (pure "DMAPP").
  int ranks_per_node = 0;
  Injection inject = Injection::none;
  Delivery delivery = Delivery::immediate;
  /// With deferred delivery, apply drained ops in shuffled order to model
  /// the network's lack of ordering guarantees.
  bool shuffle_deferred = false;
  /// Multiplier on all injected model times (1.0 = realistic).
  double time_scale = 1.0;
  NetworkModel model{};
  std::uint64_t seed = 42;
};

/// One RDMA domain: the registry plus one NIC per rank.
class Domain {
 public:
  explicit Domain(DomainConfig cfg);

  int nranks() const noexcept { return cfg_.nranks; }
  int node_of(int rank) const noexcept {
    return cfg_.ranks_per_node <= 0 ? 0 : rank / cfg_.ranks_per_node;
  }
  bool same_node(int a, int b) const noexcept {
    return node_of(a) == node_of(b);
  }

  RegionRegistry& registry() noexcept { return registry_; }
  const DomainConfig& config() const noexcept { return cfg_; }
  Nic& nic(int rank);

 private:
  DomainConfig cfg_;
  RegionRegistry registry_;
  std::vector<std::unique_ptr<Nic>> nics_;
};

}  // namespace fompi::rdma

// Memory registration.
//
// DMAPP and XPMEM both require a process to expose (register) a contiguous
// region before remote peers may access it; registration returns a
// descriptor ("rkey") that peers present with every access. The registry
// validates every remote access against the registered bounds, which turns
// wild RMA writes into FOMPI_ERR_RMA_RANGE instead of memory corruption.
//
// Fast-path contract: the registry is the *slow* path. It keeps a
// generation counter bumped on every register/deregister; each NIC keeps a
// small direct-mapped rkey cache validated against that counter, so the
// shared lock here is taken once per (rkey, generation) instead of once per
// operation (see Nic::resolve_cached and DESIGN.md "fast path").
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <shared_mutex>
#include <unordered_map>

#include "common/error.hpp"
#include "common/instr.hpp"

namespace fompi::rdma {

/// Remote descriptor handed to peers; everything needed to address a region.
struct RegionDesc {
  std::uint64_t rkey = 0;  ///< registry handle, 0 is invalid
  int owner = -1;          ///< rank that registered the region
  std::size_t size = 0;    ///< length in bytes
};

/// Immutable copy of one registration, taken under the registry lock; what
/// NIC rkey caches store.
struct RegionSnapshot {
  int owner = -1;
  std::byte* base = nullptr;
  std::size_t size = 0;
};

/// Process-wide registration table shared by all simulated NICs.
class RegionRegistry {
 public:
  /// Registers [base, base+size) owned by `owner`; returns the descriptor.
  RegionDesc register_region(int owner, void* base, std::size_t size);

  /// Removes a registration. Raises if the rkey is unknown.
  void deregister(std::uint64_t rkey);

  /// Resolves an access of `len` bytes at `offset` within region `rkey`
  /// owned by `expected_owner`; returns the target address. Raises on any
  /// violation (unknown key, wrong owner, out-of-range access).
  void* resolve(std::uint64_t rkey, int expected_owner, std::size_t offset,
                std::size_t len) const;

  /// Copies the registration under the shared lock; false if unknown.
  /// Pair with a generation() read taken *before* the call: if the counter
  /// is unchanged afterwards the snapshot is still current.
  bool snapshot(std::uint64_t rkey, RegionSnapshot* out) const;

  /// Registration epoch: bumped by every register/deregister. A cached
  /// snapshot taken at generation g is valid while generation() == g.
  std::uint64_t generation() const noexcept {
    return generation_.load(std::memory_order_acquire);
  }

  /// Number of live registrations (used by leak tests).
  std::size_t live_count() const;

 private:
  struct Entry {
    int owner;
    std::byte* base;
    std::size_t size;
  };

  mutable std::shared_mutex mu_;
  std::unordered_map<std::uint64_t, Entry> regions_;
  std::uint64_t next_key_ = 1;
  std::atomic<std::uint64_t> generation_{0};
};

}  // namespace fompi::rdma

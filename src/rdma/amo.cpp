#include "rdma/amo.hpp"

namespace fompi::rdma {

const char* to_string(AmoOp op) noexcept {
  switch (op) {
    case AmoOp::fetch_add: return "fetch_add";
    case AmoOp::fetch_and: return "fetch_and";
    case AmoOp::fetch_or:  return "fetch_or";
    case AmoOp::fetch_xor: return "fetch_xor";
    case AmoOp::swap:      return "swap";
    case AmoOp::cas:       return "cas";
    case AmoOp::read:      return "read";
  }
  return "unknown";
}

}  // namespace fompi::rdma

#include "rdma/nic.hpp"

#include <algorithm>
#include <atomic>
#include <cstring>

#include "common/instr.hpp"
#include "common/timing.hpp"

namespace fompi::rdma {

namespace {

/// Moves `len` bytes; 8-byte aligned single words go through CPU atomics so
/// that protocol flags written by puts can be polled concurrently without a
/// data race (Gemini likewise commits aligned 8-byte puts atomically).
void place_bytes(void* dst, const void* src, std::size_t len) {
  if (len == 8 && (reinterpret_cast<std::uintptr_t>(dst) & 7u) == 0 &&
      (reinterpret_cast<std::uintptr_t>(src) & 7u) == 0) {
    std::uint64_t v;
    std::memcpy(&v, src, 8);
    std::atomic_ref<std::uint64_t>(*static_cast<std::uint64_t*>(dst))
        .store(v, std::memory_order_release);
    return;
  }
  std::memcpy(dst, src, len);
}

void fetch_bytes(void* dst, const void* src, std::size_t len) {
  if (len == 8 && (reinterpret_cast<std::uintptr_t>(dst) & 7u) == 0 &&
      (reinterpret_cast<std::uintptr_t>(src) & 7u) == 0) {
    const std::uint64_t v =
        std::atomic_ref<const std::uint64_t>(
            *static_cast<const std::uint64_t*>(src))
            .load(std::memory_order_acquire);
    std::memcpy(dst, &v, 8);
    return;
  }
  std::memcpy(dst, src, len);
}

}  // namespace

Nic::Nic(Domain& domain, int rank)
    : domain_(domain), rank_(rank), rng_(domain.config().seed + 0x9e37 * rank) {}

bool Nic::inter_node(int target) const noexcept {
  return !domain_.same_node(rank_, target);
}

void Nic::wait_model_time(std::uint64_t complete_at) {
  if (domain_.config().inject == Injection::model) {
    const std::uint64_t t = now_ns();
    if (complete_at > t) spin_for_ns(complete_at - t);
  }
}

void Nic::apply(PendingOp& op) {
  if (op.applied) return;
  op.applied = true;
  switch (op.kind) {
    case PendingOp::Kind::put:
      if (!op.staged.empty()) {
        place_bytes(op.remote, op.staged.data(), op.len);
      }
      break;
    case PendingOp::Kind::get:
      if (op.len != 0) fetch_bytes(op.local, op.remote, op.len);
      break;
    case PendingOp::Kind::amo: {
      const std::uint64_t prev =
          apply_amo(op.remote, op.aop, op.operand, op.compare);
      if (op.fetch_out != nullptr) *op.fetch_out = prev;
      break;
    }
  }
  // Publish the effect: pairs with acquire loads in readers polling the
  // target memory (protocol counters are read with atomics anyway; this
  // fence covers plain payload reads after synchronization).
  std::atomic_thread_fence(std::memory_order_release);
}

Handle Nic::issue(int target, const RegionDesc& rd, std::size_t offset,
                  PendingOp op, bool implicit) {
  const DomainConfig& cfg = domain_.config();
  const NetworkModel& m = cfg.model;
  const bool inter = inter_node(target);
  op.remote = domain_.registry().resolve(rd.rkey, target, offset, op.len);
  op.implicit = implicit;

  switch (op.kind) {
    case PendingOp::Kind::put: count(Op::transport_put); break;
    case PendingOp::Kind::get: count(Op::transport_get); break;
    case PendingOp::Kind::amo:
      count(inter ? Op::transport_amo : Op::local_atomic);
      break;
  }
  if (op.len != 0) count(Op::bytes_copied, op.len);

  // Model time accounting -------------------------------------------------
  double overhead_ns = 0.0;
  double latency_ns = 0.0;
  if (inter) {
    overhead_ns = m.inter_overhead_ns;
    switch (op.kind) {
      case PendingOp::Kind::put: latency_ns = m.put_latency_ns(op.len); break;
      case PendingOp::Kind::get: latency_ns = m.get_latency_ns(op.len); break;
      case PendingOp::Kind::amo: latency_ns = m.amo_latency_ns(); break;
    }
  } else {
    overhead_ns = m.intra_overhead_ns;
    latency_ns = op.kind == PendingOp::Kind::amo
                     ? m.intra_amo_ns
                     : m.intra_latency_ns(op.len);
  }
  const double scale = cfg.time_scale;
  const std::uint64_t issue_start = now_ns();
  if (cfg.inject == Injection::model) {
    spin_for_ns(static_cast<std::uint64_t>(overhead_ns * scale));
  }
  op.complete_at =
      issue_start + static_cast<std::uint64_t>(latency_ns * scale);
  latest_complete_at_ = std::max(latest_complete_at_, op.complete_at);

  // Data movement -----------------------------------------------------------
  // Intra-node ("XPMEM") ops are CPU loads/stores: always applied at issue.
  // Inter-node ops are applied at issue under immediate delivery, and
  // postponed to completion under deferred delivery.
  const bool defer = inter && cfg.delivery == Delivery::deferred;
  if (defer) {
    if (op.kind == PendingOp::Kind::put) {
      // Real NICs read the source buffer asynchronously; staging the payload
      // at issue models a NIC that has already DMA-read the source, keeping
      // the (legal) late-visibility behaviour at the target only.
      op.staged.assign(static_cast<const std::byte*>(op.local),
                       static_cast<const std::byte*>(op.local) + op.len);
      op.local = nullptr;
    }
    if (implicit) {
      implicit_ops_.push_back(std::move(op));
      ++implicit_live_;
      return kDoneHandle;
    }
    const Handle h = next_handle_++;
    pending_.emplace(h, std::move(op));
    return h;
  }

  // Applied now. Puts source from op.local for the non-deferred path.
  if (op.kind == PendingOp::Kind::put) {
    place_bytes(op.remote, op.local, op.len);
    std::atomic_thread_fence(std::memory_order_release);
    op.applied = true;
  } else {
    apply(op);
  }

  if (implicit) {
    ++implicit_live_;
    return kDoneHandle;
  }
  if (cfg.inject == Injection::model) {
    // Data already placed; the handle still completes at the modeled time.
    PendingOp marker;
    marker.kind = op.kind;
    marker.len = 0;
    marker.complete_at = op.complete_at;
    marker.applied = true;
    const Handle h = next_handle_++;
    pending_.emplace(h, std::move(marker));
    return h;
  }
  return kDoneHandle;
}

Handle Nic::put_nb(int target, const RegionDesc& rd, std::size_t offset,
                   const void* src, std::size_t len) {
  PendingOp op;
  op.kind = PendingOp::Kind::put;
  op.local = const_cast<void*>(src);
  op.len = len;
  return issue(target, rd, offset, std::move(op), /*implicit=*/false);
}

Handle Nic::get_nb(int target, const RegionDesc& rd, std::size_t offset,
                   void* dst, std::size_t len) {
  PendingOp op;
  op.kind = PendingOp::Kind::get;
  op.local = dst;
  op.len = len;
  return issue(target, rd, offset, std::move(op), /*implicit=*/false);
}

Handle Nic::amo_nb(int target, const RegionDesc& rd, std::size_t offset,
                   AmoOp aop, std::uint64_t operand, std::uint64_t compare,
                   std::uint64_t* fetch_out) {
  PendingOp op;
  op.kind = PendingOp::Kind::amo;
  op.len = 8;
  op.aop = aop;
  op.operand = operand;
  op.compare = compare;
  op.fetch_out = fetch_out;
  return issue(target, rd, offset, std::move(op), /*implicit=*/false);
}

void Nic::put_nbi(int target, const RegionDesc& rd, std::size_t offset,
                  const void* src, std::size_t len) {
  PendingOp op;
  op.kind = PendingOp::Kind::put;
  op.local = const_cast<void*>(src);
  op.len = len;
  issue(target, rd, offset, std::move(op), /*implicit=*/true);
}

void Nic::get_nbi(int target, const RegionDesc& rd, std::size_t offset,
                  void* dst, std::size_t len) {
  PendingOp op;
  op.kind = PendingOp::Kind::get;
  op.local = dst;
  op.len = len;
  issue(target, rd, offset, std::move(op), /*implicit=*/true);
}

void Nic::amo_nbi(int target, const RegionDesc& rd, std::size_t offset,
                  AmoOp aop, std::uint64_t operand, std::uint64_t compare) {
  PendingOp op;
  op.kind = PendingOp::Kind::amo;
  op.len = 8;
  op.aop = aop;
  op.operand = operand;
  op.compare = compare;
  issue(target, rd, offset, std::move(op), /*implicit=*/true);
}

void Nic::put(int target, const RegionDesc& rd, std::size_t offset,
              const void* src, std::size_t len) {
  wait(put_nb(target, rd, offset, src, len));
}

void Nic::get(int target, const RegionDesc& rd, std::size_t offset, void* dst,
              std::size_t len) {
  wait(get_nb(target, rd, offset, dst, len));
}

std::uint64_t Nic::amo(int target, const RegionDesc& rd, std::size_t offset,
                       AmoOp aop, std::uint64_t operand,
                       std::uint64_t compare) {
  std::uint64_t fetched = 0;
  wait(amo_nb(target, rd, offset, aop, operand, compare, &fetched));
  return fetched;
}

bool Nic::test(Handle h) {
  if (h == kDoneHandle) return true;
  const auto it = pending_.find(h);
  FOMPI_REQUIRE(it != pending_.end(), ErrClass::arg, "test: unknown handle");
  if (domain_.config().inject == Injection::model &&
      now_ns() < it->second.complete_at) {
    return false;
  }
  apply(it->second);
  pending_.erase(it);
  return true;
}

void Nic::wait(Handle h) {
  if (h == kDoneHandle) return;
  const auto it = pending_.find(h);
  FOMPI_REQUIRE(it != pending_.end(), ErrClass::arg, "wait: unknown handle");
  wait_model_time(it->second.complete_at);
  apply(it->second);
  pending_.erase(it);
}

void Nic::gsync() {
  count(Op::bulk_sync);
  // Drain deferred operations, optionally in shuffled order to model the
  // absence of network ordering guarantees. Explicit handles stay valid for
  // a later test/wait; their data movement happens here at the latest.
  std::vector<PendingOp*> drained;
  drained.reserve(implicit_ops_.size() + pending_.size());
  for (auto& op : implicit_ops_) drained.push_back(&op);
  for (auto& [h, op] : pending_) drained.push_back(&op);
  if (domain_.config().shuffle_deferred && drained.size() > 1) {
    for (std::size_t i = drained.size() - 1; i > 0; --i) {
      std::swap(drained[i], drained[rng_.below(i + 1)]);
    }
  }
  for (auto* op : drained) apply(*op);
  implicit_ops_.clear();
  wait_model_time(latest_complete_at_);
  implicit_live_ = 0;
  local_fence();
}

void Nic::local_fence() {
  count(Op::memory_fence);
  std::atomic_thread_fence(std::memory_order_seq_cst);
}

Domain::Domain(DomainConfig cfg) : cfg_(cfg) {
  FOMPI_REQUIRE(cfg_.nranks >= 1, ErrClass::arg, "Domain needs >= 1 rank");
  FOMPI_REQUIRE(cfg_.ranks_per_node >= 0, ErrClass::arg,
                "ranks_per_node must be >= 0");
  nics_.reserve(static_cast<std::size_t>(cfg_.nranks));
  for (int r = 0; r < cfg_.nranks; ++r) {
    nics_.push_back(std::make_unique<Nic>(*this, r));
  }
}

Nic& Domain::nic(int rank) {
  FOMPI_REQUIRE(rank >= 0 && rank < cfg_.nranks, ErrClass::rank,
                "Domain::nic rank out of range");
  return *nics_[static_cast<std::size_t>(rank)];
}

}  // namespace fompi::rdma

#include "rdma/nic.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cstring>
#include <thread>

#include "common/backoff.hpp"
#include "common/error.hpp"
#include "common/instr.hpp"
#include "common/timing.hpp"
#include "trace/trace.hpp"

namespace fompi::rdma {

const char* to_string(OpStatus st) noexcept {
  switch (st) {
    case OpStatus::ok:        return "ok";
    case OpStatus::pending:   return "pending";
    case OpStatus::retired:   return "retired";
    case OpStatus::timeout:   return "timeout";
    case OpStatus::cq_error:  return "cq_error";
    case OpStatus::peer_dead: return "peer_dead";
    case OpStatus::retry_routing: return "retry_routing";
    case OpStatus::data_loss:     return "data_loss";
  }
  return "unknown";
}

const char* to_string(FaultKind k) noexcept {
  switch (k) {
    case FaultKind::none:             return "none";
    case FaultKind::nic_timeout:      return "nic_timeout";
    case FaultKind::cq_error:         return "cq_error";
    case FaultKind::dropped_doorbell: return "dropped_doorbell";
    case FaultKind::latency_spike:    return "latency_spike";
  }
  return "unknown";
}

namespace {

/// ErrClass the legacy (errors-are-fatal) completion APIs throw for a
/// typed op failure.
ErrClass err_class_of(OpStatus st) noexcept {
  switch (st) {
    case OpStatus::timeout:   return ErrClass::timeout;
    case OpStatus::cq_error:  return ErrClass::cq;
    case OpStatus::peer_dead: return ErrClass::peer_dead;
    case OpStatus::data_loss: return ErrClass::data_loss;
    default:                  return ErrClass::internal;
  }
}

[[noreturn]] void raise_status(OpStatus st, const char* where) {
  raise(err_class_of(st),
        std::string(where) + ": operation failed (" + to_string(st) + ")");
}

template <class Word>
bool word_aligned(const void* p) noexcept {
  return (reinterpret_cast<std::uintptr_t>(p) & (sizeof(Word) - 1)) == 0;
}

/// The aligned-word atomic dance shared by puts and gets: Gemini commits
/// naturally aligned 4- and 8-byte transfers as single atomic words, which
/// is what lets protocol flags written by puts be polled concurrently
/// without a data race.
template <class Word>
void store_word(void* dst, const void* src) noexcept {
  Word v;
  std::memcpy(&v, src, sizeof(Word));
  std::atomic_ref<Word>(*static_cast<Word*>(dst))
      .store(v, std::memory_order_release);
}

template <class Word>
void load_word(void* dst, const void* src) noexcept {
  const Word v = std::atomic_ref<const Word>(*static_cast<const Word*>(src))
                     .load(std::memory_order_acquire);
  std::memcpy(dst, &v, sizeof(Word));
}

/// Moves `len` bytes; aligned word-multiple spans go word-by-word through
/// CPU atomics, single 4-byte words cover i32 accumulate/CAS fallback
/// traffic. Word-atomic bulk transfers matter beyond flag words: a bulk
/// get can target a region whose words earlier AMOs touched atomically
/// (e.g. a dead rank's frozen shard image being drained), and reading
/// those words with one plain memcpy would be a mixed-atomicity race.
void place_bytes(void* dst, const void* src, std::size_t len) {
  if (len >= 8 && (len & 7) == 0 && word_aligned<std::uint64_t>(dst) &&
      word_aligned<std::uint64_t>(src)) {
    for (std::size_t i = 0; i < len; i += 8) {
      store_word<std::uint64_t>(static_cast<std::byte*>(dst) + i,
                                static_cast<const std::byte*>(src) + i);
    }
    return;
  }
  if (len == 4 && word_aligned<std::uint32_t>(dst) &&
      word_aligned<std::uint32_t>(src)) {
    store_word<std::uint32_t>(dst, src);
    return;
  }
  std::memcpy(dst, src, len);
}

void fetch_bytes(void* dst, const void* src, std::size_t len) {
  if (len >= 8 && (len & 7) == 0 && word_aligned<std::uint64_t>(dst) &&
      word_aligned<std::uint64_t>(src)) {
    for (std::size_t i = 0; i < len; i += 8) {
      load_word<std::uint64_t>(static_cast<std::byte*>(dst) + i,
                               static_cast<const std::byte*>(src) + i);
    }
    return;
  }
  if (len == 4 && word_aligned<std::uint32_t>(dst) &&
      word_aligned<std::uint32_t>(src)) {
    load_word<std::uint32_t>(dst, src);
    return;
  }
  std::memcpy(dst, src, len);
}

}  // namespace

Nic::Nic(Domain& domain, int rank)
    : domain_(domain), rank_(rank), rng_(domain.config().seed + 0x9e37 * rank),
      model_(domain.config().model) {
  // Throughput mode: cache the NicConfig knobs and apply static overrides
  // to this NIC's private model copy (the adaptive tuner mutates only the
  // copy, never the shared DomainConfig).
  const NicConfig& nc = domain.config().nic;
  channels_ = std::max(1, nc.channels);
  auto_batch_ = nc.auto_batch;
  adaptive_ = nc.adaptive;
  batch_capacity_ = std::max<std::size_t>(1, nc.batch_capacity);
  adapt_period_ = std::max<std::uint64_t>(1, nc.adapt_period);
  if (nc.bte_threshold_override != 0) {
    model_.bte_threshold = nc.bte_threshold_override;
  }
  batch_cutoff_pinned_ = nc.batch_cutoff_override != 0;
  batch_cutoff_ =
      batch_cutoff_pinned_ ? nc.batch_cutoff_override : model_.bte_threshold;
  if (auto_batch_) batch_entries_.reserve(batch_capacity_);

  const FaultPlan& plan = domain.config().fault;
  if (!plan.enabled()) return;
  fault_armed_ = true;
  if (plan.transient_faults_per_rank > 0) {
    // Per-rank fault stream: a pure function of (plan.seed, rank),
    // independent of the domain's workload seed so fault schedules don't
    // shift when a test changes its data pattern.
    Rng frng(plan.seed ^
             (0x9e3779b97f4a7c15ull * (static_cast<std::uint64_t>(rank) + 1)));
    fault_sched_.reserve(
        static_cast<std::size_t>(plan.transient_faults_per_rank));
    const std::uint64_t horizon = std::max<std::uint64_t>(1, plan.horizon_ops);
    const std::uint64_t repeat_span =
        static_cast<std::uint64_t>(std::max(1, plan.max_repeats));
    for (int i = 0; i < plan.transient_faults_per_rank; ++i) {
      FaultSite site;
      site.at_op = frng.below(horizon);
      switch (frng.below(4)) {
        case 0:  site.kind = FaultKind::nic_timeout; break;
        case 1:  site.kind = FaultKind::cq_error; break;
        case 2:  site.kind = FaultKind::dropped_doorbell; break;
        default: site.kind = FaultKind::latency_spike; break;
      }
      site.repeats = 1 + static_cast<int>(frng.below(repeat_span));
      fault_sched_.push_back(site);
    }
    std::stable_sort(fault_sched_.begin(), fault_sched_.end(),
                     [](const FaultSite& a, const FaultSite& b) {
                       return a.at_op < b.at_op;
                     });
  }
  update_next_fault_op();
}

void Nic::update_next_fault_op() noexcept {
  const FaultPlan& plan = domain_.config().fault;
  std::uint64_t next = fault_next_ < fault_sched_.size()
                           ? fault_sched_[fault_next_].at_op
                           : ~std::uint64_t{0};
  // The kill stays folded in unconditionally: it only leaves the schedule
  // by firing (which throws or parks), so next_fault_op_ must never move
  // past an unfired kill site.
  const std::uint64_t kill_at = plan.kill_at(rank_);
  if (kill_at < next) next = kill_at;
  next_fault_op_ = next;
}

Nic::FaultVerdict Nic::pre_issue_fault_slow(int target, bool is_read,
                                            std::uint64_t my_op) {
  const FaultPlan& plan = domain_.config().fault;

  // Scheduled death: this rank dies (or silently hangs) at the first
  // issued operation at-or-after its kill site (kill_rank or any
  // kills-list site). At-or-after, not exact equality: the site index is
  // normally hit exactly (issued_ops_ is per-rank monotone), but >= keeps
  // the death guaranteed even if a future issue path consumes op indices
  // without this check — a missed kill strands survivors that wait on the
  // death forever.
  if (my_op >= plan.kill_at(rank_)) {
    if (plan.hang_instead_of_kill) {
      // Park in an abortable spin: a silent hang, broken only by the
      // fabric hang watchdog (progress_check raises once the fleet
      // aborts).
      for (;;) {
        std::this_thread::yield();
        domain_.progress_check();
      }
    }
    domain_.mark_dead(rank_);
    trace::emit(trace::EvClass::fault, trace::EvPhase::complete, rank_,
                static_cast<std::uint64_t>(OpStatus::peer_dead));
    throw RankKilledError(rank_);
  }

  // Writes and mutating AMOs addressed to a dead rank retire with
  // peer_dead; reads of its frozen memory image succeed (fail-stop
  // recovery model, see Domain::alive). death_epoch() is a cheap monotonic
  // pre-filter so the common no-deaths case is one load.
  if (!is_read && domain_.death_epoch() != 0 && !domain_.alive(target)) {
    count(Op::op_failed);
    trace::emit(trace::EvClass::fault, trace::EvPhase::complete, target,
                static_cast<std::uint64_t>(OpStatus::peer_dead));
    return {OpStatus::peer_dead, 1.0};
  }

  // Scheduled faults at fixed op indices. Multiple sites on one index
  // compose in schedule order; sites shadowed by an earlier permanent
  // failure on the same index (at_op < my_op by the time we look again)
  // are consumed without firing.
  FaultVerdict v;
  while (fault_next_ < fault_sched_.size() &&
         fault_sched_[fault_next_].at_op <= my_op) {
    const FaultSite site = fault_sched_[fault_next_++];
    if (site.at_op != my_op) continue;
    if (site.kind == FaultKind::latency_spike) {
      count(Op::fault_injected);
      trace::emit(trace::EvClass::fault, trace::EvPhase::issue, target,
                  static_cast<std::uint64_t>(site.kind));
      v.latency_scale *= plan.spike_scale;
      continue;
    }
    // Bounded retransmission. Attempt k of the op is faulted while
    // k <= site.repeats; each faulted attempt below the retry budget
    // triggers one backed-off retry. The op survives iff
    // repeats <= retry_budget; counters are therefore an exact function
    // of the schedule: injections = min(repeats, budget + 1),
    // retries = min(repeats, budget), failed = (repeats > budget).
    Backoff backoff;
    int remaining = site.repeats;
    int retries = 0;
    while (remaining > 0) {
      --remaining;
      count(Op::fault_injected);
      trace::emit(trace::EvClass::fault, trace::EvPhase::issue, target,
                  static_cast<std::uint64_t>(site.kind));
      if (retries == plan.retry_budget) {
        count(Op::op_failed);
        const OpStatus st = site.kind == FaultKind::cq_error
                                ? OpStatus::cq_error
                                : OpStatus::timeout;
        trace::emit(trace::EvClass::fault, trace::EvPhase::complete, target,
                    static_cast<std::uint64_t>(st));
        v.status = st;
        update_next_fault_op();
        return v;
      }
      ++retries;
      count(Op::op_retried);
      trace::emit(trace::EvClass::fault, trace::EvPhase::retry, target,
                  static_cast<std::uint64_t>(site.kind));
      backoff.pause();
    }
  }
  update_next_fault_op();
  return v;
}

Handle Nic::make_failed_handle(OpStatus st, bool implicit) {
  if (implicit) {
    ++implicit_failed_;
    if (implicit_fail_status_ == OpStatus::ok) implicit_fail_status_ = st;
    return kDoneHandle;
  }
  const std::uint32_t idx = acquire_slot();
  PendingOp& op = slab_[idx].op;
  op.kind = PendingOp::Kind::put;
  op.implicit = false;
  op.applied = true;  // nothing to apply: the op never reached the wire
  op.len = 0;
  op.status = st;
  return encode(idx, slab_[idx].tag);
}

bool Nic::inter_node(int target) const noexcept {
  return !domain_.same_node(rank_, target);
}

// ---------------------------------------------------------------------------
// Throughput mode: doorbell coalescing, channel striping, adaptive tuner
// ---------------------------------------------------------------------------

void Nic::batch_begin() {
  if (batch_open_) {
    batch_explicit_ = true;  // adopt an open auto-batch scope
    return;
  }
  batch_open_ = true;
  batch_explicit_ = true;
  if (batch_entries_.capacity() < batch_capacity_) {
    batch_entries_.reserve(batch_capacity_);
  }
}

bool Nic::batch_accepts(std::size_t len) noexcept {
  // BTE-sized transfers own their doorbell (the bulk engine is not part of
  // an FMA descriptor chain), so they bypass the batch in every mode.
  if (len >= batch_cutoff_) return false;
  if (batch_open_) return true;
  // auto_batch: the first batchable op between sync points opens a scope.
  batch_open_ = true;
  batch_explicit_ = false;
  return true;
}

void Nic::batch_enqueue(const BatchEntry& e, bool inter) {
  count(Op::batched_op);
  if (inter) batch_inter_ = true;
  if (batch_entries_.size() == batch_entries_.capacity()) {
    count(Op::pool_grow);
  }
  batch_entries_.push_back(e);
  if (++batch_ndesc_ >= batch_capacity_) batch_flush();
}

void Nic::batch_flush() {
  if (!batch_open_) return;
  batch_open_ = false;
  batch_explicit_ = false;
  const std::size_t n = batch_ndesc_;
  batch_ndesc_ = 0;
  const bool inter = batch_inter_;
  batch_inter_ = false;
  if (n == 0) return;
  ++doorbells_;
  count(Op::doorbell_ring);

  // One doorbell for the whole chain: the injection overhead is charged
  // once, plus batch_chain_ns per extra descriptor — drained round-robin
  // over the configured channels (per-channel ordering preserved).
  std::uint64_t doorbell_end = 0;
  std::uint64_t doorbell_ns = 0;
  if (domain_.config().inject == Injection::model) {
    const double scale = domain_.config().time_scale;
    const double over =
        inter ? model_.inter_overhead_ns : model_.intra_overhead_ns;
    const double chain = model_.batch_chain_latency_ns(n, channels_);
    doorbell_ns = static_cast<std::uint64_t>((over + chain) * scale);
    doorbell_end = now_ns() + doorbell_ns;
  }
  for (const BatchEntry& e : batch_entries_) {
    PendingOp* op = nullptr;
    if (e.slot != BatchEntry::kNoSlot2) {
      op = &slab_[e.slot].op;
    } else if (e.implicit_idx != BatchEntry::kNoSlot2) {
      op = &implicit_ops_[e.implicit_idx];
    }
    const std::uint64_t done = doorbell_end + e.lat_ns;
    if (op != nullptr) {
      op->batch_pending = false;
      op->complete_at = done;
    }
    if (done > latest_complete_at_) latest_complete_at_ = done;
  }
  batch_entries_.clear();
  trace::emit(trace::EvClass::batch, trace::EvPhase::doorbell, -1, n,
              doorbell_ns, doorbell_end);
  // The origin is busy until the doorbell write retires; the wait routes
  // through the domain progress hook, so a batched spin still aborts on a
  // dead fleet (Fabric::yield_check).
  wait_model_time(doorbell_end);
}

void Nic::note_op_size(std::size_t len) {
  const std::size_t b =
      len == 0 ? 0 : static_cast<std::size_t>(std::bit_width(len));
  ++size_hist_[b];
  if (++ops_since_retune_ >= adapt_period_) retune();
}

void Nic::retune() {
  ops_since_retune_ = 0;
  // Candidate FMA->BTE switch points bracketing the Gemini default. The
  // tuner minimizes the histogram-weighted modeled put cost and moves only
  // on a clear (>0.1%) improvement, so pure small-op traffic — where every
  // candidate is equivalent — never perturbs the default.
  static constexpr std::size_t kCandidates[] = {512,  1024, 2048, 4096,
                                                8192, 16384, 32768};
  const auto cost_at = [this](std::size_t threshold) {
    double cost = 0.0;
    for (std::size_t b = 1; b < size_hist_.size(); ++b) {
      const std::uint64_t cnt = size_hist_[b];
      if (cnt == 0) continue;
      const std::size_t rep = std::size_t{1} << (b - 1);
      const double per = rep >= threshold ? model_.put_bte_cost_ns(rep)
                                          : model_.put_fma_cost_ns(rep);
      cost += per * static_cast<double>(cnt);
    }
    return cost;
  };
  std::size_t best = model_.bte_threshold;
  double best_cost = cost_at(best) * 0.999;
  for (const std::size_t cand : kCandidates) {
    if (cand == model_.bte_threshold) continue;
    const double cost = cost_at(cand);
    if (cost < best_cost) {
      best_cost = cost;
      best = cand;
    }
  }
  if (best != model_.bte_threshold) {
    model_.bte_threshold = best;
    if (!batch_cutoff_pinned_) batch_cutoff_ = best;
    ++retunes_;
    count(Op::adapt_retune);
    trace::emit(trace::EvClass::adapt, trace::EvPhase::issue, -1, best);
  }
  // Decay: the histogram tracks recent traffic, not the full history.
  for (std::uint64_t& h : size_hist_) h >>= 1;
}

void Nic::wait_model_time(std::uint64_t complete_at) {
  if (domain_.config().inject != Injection::model) return;
  const std::uint64_t t = now_ns();
  if (complete_at <= t) return;
  const std::uint64_t ns = complete_at - t;
  // Short waits busy-spin for timing fidelity. Long waits are an unbounded
  // (minutes under large time_scale) completion spin: yield and poll the
  // domain's progress hook so a peer failure aborts the wait instead of
  // letting the fleet hang on a dead rank.
  constexpr std::uint64_t kPoliteThreshold = 5'000;  // 5 us
  if (ns <= kPoliteThreshold) {
    spin_for_ns(ns);
    return;
  }
  while (now_ns() < complete_at) {
    std::this_thread::yield();
    domain_.progress_check();
  }
}

void Nic::charge_model_ns(double ns) {
  if (domain_.config().inject != Injection::model || ns <= 0.0) return;
  const std::uint64_t done =
      now_ns() +
      static_cast<std::uint64_t>(ns * domain_.config().time_scale);
  if (done > latest_complete_at_) latest_complete_at_ = done;
  wait_model_time(done);
}

void Nic::PendingOp::stage_payload(const void* src, std::size_t n) {
  staged_len = n;
  if (n <= kInlineStage) {
    std::memcpy(stage_.data(), src, n);
    return;
  }
  if (n > spill_.capacity()) count(Op::pool_grow);
  spill_.assign(static_cast<const std::byte*>(src),
                static_cast<const std::byte*>(src) + n);
}

void Nic::PendingOp::stage_vector(const std::byte* local_base,
                                  const Frag* frags, std::size_t nfrags,
                                  std::size_t total, bool gather) {
  if (nfrags > frags_.capacity()) count(Op::pool_grow);
  frags_.assign(frags, frags + nfrags);
  if (!gather) return;  // gets carry no payload at issue
  staged_len = total;
  std::byte* dst;
  if (total <= kInlineStage) {
    dst = stage_.data();
  } else {
    if (total > spill_.capacity()) count(Op::pool_grow);
    spill_.resize(total);
    dst = spill_.data();
  }
  std::size_t pos = 0;
  for (std::size_t i = 0; i < nfrags; ++i) {
    std::memcpy(dst + pos, local_base + frags[i].local_off, frags[i].len);
    pos += frags[i].len;
  }
}

void Nic::apply_direct(const OpReq& req, std::byte* remote) {
  switch (req.kind) {
    case PendingOp::Kind::put:
      place_bytes(remote, req.src, req.len);
      break;
    case PendingOp::Kind::get:
      if (req.len != 0) fetch_bytes(req.dst, remote, req.len);
      break;
    case PendingOp::Kind::amo: {
      const std::uint64_t prev =
          apply_amo(remote, req.aop, req.operand, req.compare);
      if (req.fetch_out != nullptr) *req.fetch_out = prev;
      break;
    }
  }
  // Publish the effect: pairs with acquire loads in readers polling the
  // target memory (protocol counters are read with atomics anyway; this
  // fence covers plain payload reads after synchronization).
  std::atomic_thread_fence(std::memory_order_release);
}

void Nic::apply(PendingOp& op) {
  if (op.applied) return;
  op.applied = true;
  if (!op.frags_.empty()) {
    // Deferred vectored op: scatter the gathered put payload / fetch every
    // get fragment now that the vector completes as one unit.
    if (op.kind == PendingOp::Kind::put) {
      std::size_t pos = 0;
      const std::byte* staged = op.staged_data();
      for (const Frag& f : op.frags_) {
        place_bytes(op.remote + f.remote_off, staged + pos, f.len);
        pos += f.len;
      }
    } else {
      auto* lbase = static_cast<std::byte*>(op.local);
      for (const Frag& f : op.frags_) {
        fetch_bytes(lbase + f.local_off, op.remote + f.remote_off, f.len);
      }
    }
    std::atomic_thread_fence(std::memory_order_release);
    return;
  }
  switch (op.kind) {
    case PendingOp::Kind::put:
      if (op.staged_len != 0) {
        place_bytes(op.remote, op.staged_data(), op.len);
      }
      break;
    case PendingOp::Kind::get:
      if (op.len != 0) fetch_bytes(op.local, op.remote, op.len);
      break;
    case PendingOp::Kind::amo: {
      const std::uint64_t prev =
          apply_amo(op.remote, op.aop, op.operand, op.compare);
      if (op.fetch_out != nullptr) *op.fetch_out = prev;
      break;
    }
  }
  std::atomic_thread_fence(std::memory_order_release);
}

std::byte* Nic::resolve_cached(std::uint64_t rkey, int expected_owner,
                               std::size_t offset, std::size_t len) {
  count(Op::validation_check);
  RkeyEntry& e = rkey_cache_[rkey & (kRkeyCacheSize - 1)];
  // Read the generation BEFORE any locked lookup: a register/deregister
  // racing with the fill lands the entry with a stale generation, so the
  // next access revalidates instead of trusting a possibly-freed mapping.
  const std::uint64_t gen = domain_.registry().generation();
  if (e.rkey == rkey && e.gen == gen) {
    count(Op::rkey_cache_hit);
  } else {
    count(Op::rkey_cache_miss);
    RegionSnapshot snap;
    FOMPI_REQUIRE(domain_.registry().snapshot(rkey, &snap),
                  ErrClass::rma_range, "access to unregistered region");
    e.rkey = rkey;
    e.gen = gen;
    e.base = snap.base;
    e.size = snap.size;
    e.owner = snap.owner;
  }
  FOMPI_REQUIRE(e.owner == expected_owner, ErrClass::rma_range,
                "rkey does not belong to the addressed rank");
  FOMPI_REQUIRE(offset <= e.size && len <= e.size - offset,
                ErrClass::rma_range, "RMA access outside registered region");
  return e.base + offset;
}

std::uint32_t Nic::acquire_slot() {
  std::uint32_t idx;
  if (free_head_ != kNoSlot) {
    idx = free_head_;
    free_head_ = slab_[idx].next_free;
  } else {
    count(Op::pool_grow);
    idx = static_cast<std::uint32_t>(slab_.size());
    slab_.emplace_back();
  }
  Slot& s = slab_[idx];
  s.live = true;
  s.op.reset();
  ++explicit_live_;
  return idx;
}

void Nic::release_slot(std::uint32_t index) {
  Slot& s = slab_[index];
  s.live = false;
  if (++s.tag == 0) s.tag = 1;  // tag 0 must stay permanently invalid
  s.next_free = free_head_;
  free_head_ = index;
  --explicit_live_;
}

Nic::Slot* Nic::lookup(Handle h) {
  const std::uint32_t idx = static_cast<std::uint32_t>(h);
  const std::uint32_t tag = static_cast<std::uint32_t>(h >> 32);
  if (idx >= slab_.size()) return nullptr;
  Slot& s = slab_[idx];
  if (!s.live || s.tag != tag) return nullptr;
  return &s;
}

Nic::PendingOp& Nic::acquire_implicit() {
  if (implicit_count_ == implicit_ops_.size()) {
    count(Op::pool_grow);
    implicit_ops_.emplace_back();
  }
  PendingOp& op = implicit_ops_[implicit_count_++];
  op.reset();
  return op;
}

Handle Nic::issue(int target, const RegionDesc& rd, std::size_t offset,
                  const OpReq& req, bool implicit) {
  const DomainConfig& cfg = domain_.config();
  const bool inter = inter_node(target);
  std::byte* remote = resolve_cached(rd.rkey, target, offset, req.len);

  // Fault plan gate: one predictable branch when disarmed. A permanent
  // failure retires the op here — before the transport counters — so the
  // transport_* counts only ever reflect ops that reached the wire.
  double fault_scale = 1.0;
  if (fault_armed_) {
    const bool is_read =
        req.kind == PendingOp::Kind::get ||
        (req.kind == PendingOp::Kind::amo && req.aop == AmoOp::read);
    const FaultVerdict fv = pre_issue_fault(target, is_read);
    if (fv.status != OpStatus::ok) {
      return make_failed_handle(fv.status, implicit);
    }
    fault_scale = fv.latency_scale;
  }

  switch (req.kind) {
    case PendingOp::Kind::put: count(Op::transport_put); break;
    case PendingOp::Kind::get: count(Op::transport_get); break;
    case PendingOp::Kind::amo:
      count(inter ? Op::transport_amo : Op::local_atomic);
      break;
  }
  if (req.len != 0) count(Op::bytes_copied, req.len);
  if (adaptive_) note_op_size(req.len);

  // Throughput mode: an FMA-sized op inside a batch scope (explicit or
  // auto) skips its private doorbell; completion times are assigned when
  // batch_flush rings the shared one. One predictable branch when idle.
  bool batched = false;
  if (batch_open_ || auto_batch_) batched = batch_accepts(req.len);

  // Model time accounting: only the injection mode consults the clock; the
  // functional mode (Injection::none) runs the pure software path.
  std::uint64_t complete_at = 0;
  std::uint64_t model_lat = 0;
  if (cfg.inject == Injection::model) {
    const NetworkModel& m = model_;
    double overhead_ns = 0.0;
    double latency_ns = 0.0;
    if (inter) {
      overhead_ns = m.inter_overhead_ns;
      switch (req.kind) {
        case PendingOp::Kind::put:
          latency_ns = m.put_striped_latency_ns(req.len, channels_);
          break;
        case PendingOp::Kind::get:
          latency_ns = m.get_striped_latency_ns(req.len, channels_);
          break;
        case PendingOp::Kind::amo:
          latency_ns = m.amo_latency_ns();
          break;
      }
      if (channels_ > 1 && req.len >= m.bte_threshold &&
          req.kind != PendingOp::Kind::amo) {
        count(Op::channel_stripe);
        trace::emit(trace::EvClass::channel, trace::EvPhase::issue, target,
                    static_cast<std::uint64_t>(channels_));
      }
    } else {
      overhead_ns = m.intra_overhead_ns;
      latency_ns = req.kind == PendingOp::Kind::amo
                       ? m.intra_amo_ns
                       : m.intra_latency_ns(req.len);
    }
    const double scale = cfg.time_scale;
    model_lat = static_cast<std::uint64_t>(latency_ns * scale * fault_scale);
    if (!batched) {
      const std::uint64_t issue_start = now_ns();
      spin_until_ns(issue_start +
                    static_cast<std::uint64_t>(overhead_ns * scale));
      complete_at = issue_start + model_lat;
      latest_complete_at_ = std::max(latest_complete_at_, complete_at);
    }
  }

  // Data movement -----------------------------------------------------------
  // Intra-node ("XPMEM") ops are CPU loads/stores: always applied at issue.
  // Inter-node ops are applied at issue under immediate delivery, and
  // postponed to completion under deferred delivery.
  const bool defer = inter && cfg.delivery == Delivery::deferred;
  const trace::EvClass ev_cls =
      req.kind == PendingOp::Kind::put   ? trace::EvClass::put
      : req.kind == PendingOp::Kind::get ? trace::EvClass::get
                                         : trace::EvClass::amo;
  // `issue` = data moved at issue; `doorbell` = handed to the wire, remote
  // memory commits at sim_ns (deferred delivery).
  trace::emit(ev_cls, defer ? trace::EvPhase::doorbell : trace::EvPhase::issue,
              target, req.len, model_lat, complete_at);
  if (!defer) {
    apply_direct(req, remote);
    if (implicit) {
      ++implicit_live_;
      if (batched) {
        // No pooled record: only the batch's completion horizon matters.
        batch_enqueue({BatchEntry::kNoSlot2, BatchEntry::kNoSlot2, model_lat},
                      inter);
      }
      return kDoneHandle;
    }
    if (cfg.inject == Injection::model) {
      // Data already placed; the handle still completes at the modeled
      // time.
      const std::uint32_t idx = acquire_slot();
      PendingOp& op = slab_[idx].op;
      op.kind = req.kind;
      op.implicit = false;
      op.applied = true;
      op.len = 0;
      op.complete_at = complete_at;
      const Handle h = encode(idx, slab_[idx].tag);
      if (batched) {
        op.batch_pending = true;
        batch_enqueue({idx, BatchEntry::kNoSlot2, model_lat}, inter);
      }
      return h;
    }
    if (batched) {
      batch_enqueue({BatchEntry::kNoSlot2, BatchEntry::kNoSlot2, 0}, inter);
    }
    return kDoneHandle;
  }

  // Deferred: record the op in the pool; data moves at completion. Real
  // NICs read the put source asynchronously; staging the payload at issue
  // models a NIC that has already DMA-read the source, keeping the (legal)
  // late-visibility behaviour at the target only.
  std::uint32_t idx = kNoSlot;
  PendingOp* op;
  if (implicit) {
    op = &acquire_implicit();
  } else {
    idx = acquire_slot();
    op = &slab_[idx].op;
  }
  op->kind = req.kind;
  op->implicit = implicit;
  op->remote = remote;
  op->local = req.dst;
  op->len = req.len;
  op->aop = req.aop;
  op->operand = req.operand;
  op->compare = req.compare;
  op->fetch_out = req.fetch_out;
  op->complete_at = complete_at;
  if (req.kind == PendingOp::Kind::put) op->stage_payload(req.src, req.len);
  if (batched) op->batch_pending = true;
  if (implicit) {
    ++implicit_live_;
    if (batched) {
      batch_enqueue({BatchEntry::kNoSlot2,
                     static_cast<std::uint32_t>(implicit_count_ - 1),
                     model_lat},
                    inter);
    }
    return kDoneHandle;
  }
  const Handle h = encode(idx, slab_[idx].tag);
  if (batched) batch_enqueue({idx, BatchEntry::kNoSlot2, model_lat}, inter);
  return h;
}

Handle Nic::issue_vec(int target, const RegionDesc& rd, std::size_t base_off,
                      std::size_t span_len, PendingOp::Kind kind,
                      void* local_base, const Frag* frags, std::size_t nfrags,
                      bool implicit) {
  if (nfrags == 0) return kDoneHandle;
  const DomainConfig& cfg = domain_.config();
  const bool inter = inter_node(target);
  // One rkey resolution and one bounds check cover every fragment: the
  // caller passes the span [base_off, base_off + span_len) the vector
  // touches (fragment offsets are relative to base_off).
  std::byte* remote = resolve_cached(rd.rkey, target, base_off, span_len);

  // Fault plan gate (see issue()): the whole vector is one op behind one
  // doorbell, so it faults and retires as one unit.
  double fault_scale = 1.0;
  if (fault_armed_) {
    const FaultVerdict fv =
        pre_issue_fault(target, /*is_read=*/kind == PendingOp::Kind::get);
    if (fv.status != OpStatus::ok) {
      return make_failed_handle(fv.status, implicit);
    }
    fault_scale = fv.latency_scale;
  }

  std::size_t total = 0;
  for (std::size_t i = 0; i < nfrags; ++i) total += frags[i].len;

  // One doorbell: a single transport op regardless of fragment count.
  count(kind == PendingOp::Kind::put ? Op::transport_put : Op::transport_get);
  count(Op::vectored_op);
  if (total != 0) count(Op::bytes_copied, total);
  if (adaptive_) note_op_size(total);

  std::uint64_t complete_at = 0;
  std::uint64_t model_lat = 0;
  if (cfg.inject == Injection::model) {
    const NetworkModel& m = model_;
    double overhead_ns = 0.0;
    double latency_ns = 0.0;
    if (inter) {
      // A vectored op is already one chained doorbell; its payload still
      // stripes over the channels when it crosses into BTE territory.
      overhead_ns = m.inter_overhead_ns;
      const double chain =
          nfrags > 1 ? m.vec_chain_ns * static_cast<double>(nfrags - 1) : 0.0;
      latency_ns = (kind == PendingOp::Kind::put
                        ? m.put_striped_latency_ns(total, channels_)
                        : m.get_striped_latency_ns(total, channels_)) +
                   chain;
      if (channels_ > 1 && total >= m.bte_threshold) {
        count(Op::channel_stripe);
        trace::emit(trace::EvClass::channel, trace::EvPhase::issue, target,
                    static_cast<std::uint64_t>(channels_));
      }
    } else {
      overhead_ns = m.intra_overhead_ns;
      latency_ns = m.intra_vec_latency_ns(nfrags, total);
    }
    const double scale = cfg.time_scale;
    const std::uint64_t issue_start = now_ns();
    spin_until_ns(issue_start +
                  static_cast<std::uint64_t>(overhead_ns * scale));
    model_lat = static_cast<std::uint64_t>(latency_ns * scale * fault_scale);
    complete_at = issue_start + model_lat;
    latest_complete_at_ = std::max(latest_complete_at_, complete_at);
  }

  const bool defer = inter && cfg.delivery == Delivery::deferred;
  trace::emit(trace::EvClass::vectored,
              defer ? trace::EvPhase::doorbell : trace::EvPhase::issue, target,
              total, model_lat, complete_at);
  if (!defer) {
    auto* lbase = static_cast<std::byte*>(local_base);
    if (kind == PendingOp::Kind::put) {
      for (std::size_t i = 0; i < nfrags; ++i) {
        place_bytes(remote + frags[i].remote_off, lbase + frags[i].local_off,
                    frags[i].len);
      }
    } else {
      for (std::size_t i = 0; i < nfrags; ++i) {
        fetch_bytes(lbase + frags[i].local_off, remote + frags[i].remote_off,
                    frags[i].len);
      }
    }
    std::atomic_thread_fence(std::memory_order_release);
    if (implicit) {
      ++implicit_live_;
      return kDoneHandle;
    }
    if (cfg.inject == Injection::model) {
      const std::uint32_t idx = acquire_slot();
      PendingOp& op = slab_[idx].op;
      op.kind = kind;
      op.implicit = false;
      op.applied = true;
      op.len = 0;
      op.complete_at = complete_at;
      return encode(idx, slab_[idx].tag);
    }
    return kDoneHandle;
  }

  // Deferred: one pooled record covers the whole vector; a put gathers its
  // fragment payloads into the staging buffer at issue (the NIC has
  // "already DMA-read" the source, as for contiguous deferred puts).
  std::uint32_t idx = kNoSlot;
  PendingOp* op;
  if (implicit) {
    op = &acquire_implicit();
  } else {
    idx = acquire_slot();
    op = &slab_[idx].op;
  }
  op->kind = kind;
  op->implicit = implicit;
  op->remote = remote;
  op->local = local_base;
  op->len = total;
  op->complete_at = complete_at;
  op->stage_vector(static_cast<const std::byte*>(local_base), frags, nfrags,
                   total, /*gather=*/kind == PendingOp::Kind::put);
  if (implicit) {
    ++implicit_live_;
    return kDoneHandle;
  }
  return encode(idx, slab_[idx].tag);
}

Handle Nic::put_nbv(int target, const RegionDesc& rd, std::size_t base_off,
                    std::size_t span_len, const void* local_base,
                    const Frag* frags, std::size_t nfrags) {
  return issue_vec(target, rd, base_off, span_len, PendingOp::Kind::put,
                   const_cast<void*>(local_base), frags, nfrags,
                   /*implicit=*/false);
}

Handle Nic::get_nbv(int target, const RegionDesc& rd, std::size_t base_off,
                    std::size_t span_len, void* local_base, const Frag* frags,
                    std::size_t nfrags) {
  return issue_vec(target, rd, base_off, span_len, PendingOp::Kind::get,
                   local_base, frags, nfrags, /*implicit=*/false);
}

void Nic::put_nbiv(int target, const RegionDesc& rd, std::size_t base_off,
                   std::size_t span_len, const void* local_base,
                   const Frag* frags, std::size_t nfrags) {
  issue_vec(target, rd, base_off, span_len, PendingOp::Kind::put,
            const_cast<void*>(local_base), frags, nfrags, /*implicit=*/true);
}

void Nic::get_nbiv(int target, const RegionDesc& rd, std::size_t base_off,
                   std::size_t span_len, void* local_base, const Frag* frags,
                   std::size_t nfrags) {
  issue_vec(target, rd, base_off, span_len, PendingOp::Kind::get, local_base,
            frags, nfrags, /*implicit=*/true);
}

Handle Nic::put_nb(int target, const RegionDesc& rd, std::size_t offset,
                   const void* src, std::size_t len) {
  OpReq req;
  req.kind = PendingOp::Kind::put;
  req.src = src;
  req.len = len;
  return issue(target, rd, offset, req, /*implicit=*/false);
}

Handle Nic::get_nb(int target, const RegionDesc& rd, std::size_t offset,
                   void* dst, std::size_t len) {
  OpReq req;
  req.kind = PendingOp::Kind::get;
  req.dst = dst;
  req.len = len;
  return issue(target, rd, offset, req, /*implicit=*/false);
}

Handle Nic::amo_nb(int target, const RegionDesc& rd, std::size_t offset,
                   AmoOp aop, std::uint64_t operand, std::uint64_t compare,
                   std::uint64_t* fetch_out) {
  OpReq req;
  req.kind = PendingOp::Kind::amo;
  req.len = 8;
  req.aop = aop;
  req.operand = operand;
  req.compare = compare;
  req.fetch_out = fetch_out;
  return issue(target, rd, offset, req, /*implicit=*/false);
}

void Nic::put_nbi(int target, const RegionDesc& rd, std::size_t offset,
                  const void* src, std::size_t len) {
  OpReq req;
  req.kind = PendingOp::Kind::put;
  req.src = src;
  req.len = len;
  issue(target, rd, offset, req, /*implicit=*/true);
}

void Nic::get_nbi(int target, const RegionDesc& rd, std::size_t offset,
                  void* dst, std::size_t len) {
  OpReq req;
  req.kind = PendingOp::Kind::get;
  req.dst = dst;
  req.len = len;
  issue(target, rd, offset, req, /*implicit=*/true);
}

void Nic::amo_nbi(int target, const RegionDesc& rd, std::size_t offset,
                  AmoOp aop, std::uint64_t operand, std::uint64_t compare) {
  OpReq req;
  req.kind = PendingOp::Kind::amo;
  req.len = 8;
  req.aop = aop;
  req.operand = operand;
  req.compare = compare;
  issue(target, rd, offset, req, /*implicit=*/true);
}

void Nic::put(int target, const RegionDesc& rd, std::size_t offset,
              const void* src, std::size_t len) {
  wait(put_nb(target, rd, offset, src, len));
}

void Nic::get(int target, const RegionDesc& rd, std::size_t offset, void* dst,
              std::size_t len) {
  wait(get_nb(target, rd, offset, dst, len));
}

std::uint64_t Nic::amo(int target, const RegionDesc& rd, std::size_t offset,
                       AmoOp aop, std::uint64_t operand,
                       std::uint64_t compare) {
  std::uint64_t fetched = 0;
  wait(amo_nb(target, rd, offset, aop, operand, compare, &fetched));
  return fetched;
}

void Nic::trace_retire(const PendingOp& op) noexcept {
  const trace::EvClass cls =
      !op.frags_.empty()                 ? trace::EvClass::vectored
      : op.kind == PendingOp::Kind::put  ? trace::EvClass::put
      : op.kind == PendingOp::Kind::get  ? trace::EvClass::get
                                         : trace::EvClass::amo;
  trace::emit(cls, trace::EvPhase::complete, -1, op.len, 0, op.complete_at);
}

bool Nic::test(Handle h) {
  if (h == kDoneHandle) return true;
  Slot* s = lookup(h);
  FOMPI_REQUIRE(s != nullptr, ErrClass::arg, "test: unknown handle");
  // Probing a batched op forces its doorbell (MPI progress): the op cannot
  // complete while it sits behind an unrung doorbell.
  if (s->op.batch_pending) batch_flush();
  if (s->op.status != OpStatus::ok) {
    const OpStatus st = s->op.status;
    release_slot(static_cast<std::uint32_t>(h));
    raise_status(st, "test");
  }
  if (domain_.config().inject == Injection::model &&
      now_ns() < s->op.complete_at) {
    return false;
  }
  apply(s->op);
  trace_retire(s->op);
  release_slot(static_cast<std::uint32_t>(h));
  return true;
}

void Nic::wait(Handle h) {
  if (h == kDoneHandle) return;
  Slot* s = lookup(h);
  FOMPI_REQUIRE(s != nullptr, ErrClass::arg, "wait: unknown handle");
  if (s->op.batch_pending) batch_flush();
  if (s->op.status != OpStatus::ok) {
    const OpStatus st = s->op.status;
    release_slot(static_cast<std::uint32_t>(h));
    raise_status(st, "wait");
  }
  wait_model_time(s->op.complete_at);
  apply(s->op);
  trace_retire(s->op);
  release_slot(static_cast<std::uint32_t>(h));
}

bool Nic::test_status(Handle h, OpStatus* out) {
  FOMPI_REQUIRE(out != nullptr, ErrClass::arg, "test_status: null out");
  if (h == kDoneHandle) {
    *out = OpStatus::ok;
    return true;
  }
  Slot* s = lookup(h);
  if (s == nullptr) {
    // Stale or double-waited handle: retires with a typed status instead
    // of throwing (or worse, aliasing a recycled slot — the ABA tag rules
    // that out).
    *out = OpStatus::retired;
    return true;
  }
  if (s->op.batch_pending) batch_flush();
  if (s->op.status != OpStatus::ok) {
    *out = s->op.status;
    release_slot(static_cast<std::uint32_t>(h));
    return true;
  }
  if (domain_.config().inject == Injection::model &&
      now_ns() < s->op.complete_at) {
    *out = OpStatus::pending;
    return false;
  }
  apply(s->op);
  trace_retire(s->op);
  release_slot(static_cast<std::uint32_t>(h));
  *out = OpStatus::ok;
  return true;
}

OpStatus Nic::wait_status(Handle h) {
  if (h == kDoneHandle) return OpStatus::ok;
  Slot* s = lookup(h);
  if (s == nullptr) return OpStatus::retired;
  if (s->op.batch_pending) batch_flush();
  if (s->op.status != OpStatus::ok) {
    const OpStatus st = s->op.status;
    release_slot(static_cast<std::uint32_t>(h));
    return st;
  }
  wait_model_time(s->op.complete_at);
  apply(s->op);
  trace_retire(s->op);
  release_slot(static_cast<std::uint32_t>(h));
  return OpStatus::ok;
}

std::uint64_t Nic::completion_deadline(Handle h) {
  if (h == kDoneHandle) return 0;
  Slot* s = lookup(h);
  if (s == nullptr) return 0;  // stale: wait_status retires it immediately
  if (s->op.batch_pending) batch_flush();
  if (s->op.status != OpStatus::ok) return 0;  // typed failure, ready now
  if (domain_.config().inject != Injection::model) return 0;
  return s->op.complete_at;
}

void Nic::gsync() {
  const OpStatus st = gsync_status();
  if (st != OpStatus::ok) raise_status(st, "gsync");
}

OpStatus Nic::gsync_status() {
  // An open batch (explicit or auto) is flushed before bulk completion:
  // this is what guarantees flush/fence/unlock/complete — which all route
  // through gsync — ring every outstanding doorbell (MPI RMA semantics).
  batch_flush();
  count(Op::bulk_sync);
  const trace::Span sp(trace::EvClass::bulk_sync, -1, outstanding());
  // Drain deferred operations, optionally in shuffled order to model the
  // absence of network ordering guarantees. Explicit handles stay valid for
  // a later test/wait; their data movement happens here at the latest.
  drain_scratch_.clear();
  for (std::size_t i = 0; i < implicit_count_; ++i) {
    drain_scratch_.push_back(&implicit_ops_[i]);
  }
  if (explicit_live_ != 0) {
    for (Slot& s : slab_) {
      if (s.live) drain_scratch_.push_back(&s.op);
    }
  }
  if (domain_.config().shuffle_deferred && drain_scratch_.size() > 1) {
    for (std::size_t i = drain_scratch_.size() - 1; i > 0; --i) {
      std::swap(drain_scratch_[i], drain_scratch_[rng_.below(i + 1)]);
    }
  }
  for (PendingOp* op : drain_scratch_) apply(*op);
  implicit_count_ = 0;
  wait_model_time(latest_complete_at_);
  implicit_live_ = 0;
  local_fence();
  // Surface the first implicit-op failure recorded since the previous
  // gsync, then reset: each bulk-completion epoch reports independently.
  const OpStatus st = implicit_fail_status_;
  implicit_fail_status_ = OpStatus::ok;
  implicit_failed_ = 0;
  return st;
}

void Nic::local_fence() {
  count(Op::memory_fence);
  std::atomic_thread_fence(std::memory_order_seq_cst);
}

Domain::Domain(DomainConfig cfg) : cfg_(cfg) {
  FOMPI_REQUIRE(cfg_.nranks >= 1, ErrClass::arg, "Domain needs >= 1 rank");
  FOMPI_REQUIRE(cfg_.ranks_per_node >= 0, ErrClass::arg,
                "ranks_per_node must be >= 0");
  dead_ = std::make_unique<std::atomic<bool>[]>(
      static_cast<std::size_t>(cfg_.nranks));
  for (int r = 0; r < cfg_.nranks; ++r) {
    dead_[static_cast<std::size_t>(r)].store(false, std::memory_order_relaxed);
  }
  nics_.reserve(static_cast<std::size_t>(cfg_.nranks));
  for (int r = 0; r < cfg_.nranks; ++r) {
    nics_.push_back(std::make_unique<Nic>(*this, r));
  }
}

Nic& Domain::nic(int rank) {
  FOMPI_REQUIRE(rank >= 0 && rank < cfg_.nranks, ErrClass::rank,
                "Domain::nic rank out of range");
  return *nics_[static_cast<std::size_t>(rank)];
}

}  // namespace fompi::rdma

// Atomic memory operations on 8-byte words.
//
// Mirrors the DMAPP AMO set: hardware-accelerated ops are ADD, AND, OR,
// XOR, SWAP and CAS on 8-byte naturally-aligned words. Anything else (MIN,
// MAX, PROD, ...) is *not* accelerated and must go through the library's
// lock-get-modify-put fallback protocol, exactly as in the paper (Fig 6a).
#pragma once

#include <atomic>
#include <cstdint>

#include "common/error.hpp"

namespace fompi::rdma {

/// Hardware-accelerated AMO opcodes (operate on one 64-bit word).
enum class AmoOp : std::uint8_t {
  fetch_add,  ///< *addr += operand, returns old value
  fetch_and,  ///< *addr &= operand, returns old value
  fetch_or,   ///< *addr |= operand, returns old value
  fetch_xor,  ///< *addr ^= operand, returns old value
  swap,       ///< *addr = operand, returns old value
  cas,        ///< if (*addr == compare) *addr = operand; returns old value
  read,       ///< atomic read (fetch with no-op)
};

const char* to_string(AmoOp op) noexcept;

/// Applies `op` atomically to the 8-byte word at `addr` (must be 8-byte
/// aligned) and returns the previous value. This is the "NIC-side" ALU; the
/// same CPU atomics implement the XPMEM intra-node path, which is what makes
/// intra- and inter-node AMOs interoperable (a property DMAPP+XPMEM on Cray
/// systems also provides for the ops foMPI uses).
inline std::uint64_t apply_amo(void* addr, AmoOp op, std::uint64_t operand,
                               std::uint64_t compare) {
  FOMPI_REQUIRE((reinterpret_cast<std::uintptr_t>(addr) & 7u) == 0,
                ErrClass::arg, "AMO target must be 8-byte aligned");
  std::atomic_ref<std::uint64_t> word(*static_cast<std::uint64_t*>(addr));
  switch (op) {
    case AmoOp::fetch_add: return word.fetch_add(operand);
    case AmoOp::fetch_and: return word.fetch_and(operand);
    case AmoOp::fetch_or:  return word.fetch_or(operand);
    case AmoOp::fetch_xor: return word.fetch_xor(operand);
    case AmoOp::swap:      return word.exchange(operand);
    case AmoOp::cas: {
      std::uint64_t expected = compare;
      word.compare_exchange_strong(expected, operand);
      return expected;  // old value whether or not the swap happened
    }
    case AmoOp::read: return word.load();
  }
  raise(ErrClass::internal, "bad AmoOp");
}

}  // namespace fompi::rdma

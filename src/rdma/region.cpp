#include "rdma/region.hpp"

#include <mutex>

namespace fompi::rdma {

RegionDesc RegionRegistry::register_region(int owner, void* base,
                                           std::size_t size) {
  FOMPI_REQUIRE(base != nullptr || size == 0, ErrClass::arg,
                "cannot register a null region of nonzero size");
  FOMPI_REQUIRE(owner >= 0, ErrClass::rank, "owner rank must be nonnegative");
  std::unique_lock lock(mu_);
  const std::uint64_t key = next_key_++;
  regions_.emplace(key, Entry{owner, static_cast<std::byte*>(base), size});
  generation_.fetch_add(1, std::memory_order_release);
  return RegionDesc{key, owner, size};
}

void RegionRegistry::deregister(std::uint64_t rkey) {
  std::unique_lock lock(mu_);
  const auto it = regions_.find(rkey);
  FOMPI_REQUIRE(it != regions_.end(), ErrClass::arg,
                "deregister: unknown rkey");
  regions_.erase(it);
  generation_.fetch_add(1, std::memory_order_release);
}

void* RegionRegistry::resolve(std::uint64_t rkey, int expected_owner,
                              std::size_t offset, std::size_t len) const {
  count(Op::validation_check);
  std::shared_lock lock(mu_);
  const auto it = regions_.find(rkey);
  FOMPI_REQUIRE(it != regions_.end(), ErrClass::rma_range,
                "access to unregistered region");
  const Entry& e = it->second;
  FOMPI_REQUIRE(e.owner == expected_owner, ErrClass::rma_range,
                "rkey does not belong to the addressed rank");
  FOMPI_REQUIRE(offset <= e.size && len <= e.size - offset,
                ErrClass::rma_range, "RMA access outside registered region");
  return e.base + offset;
}

bool RegionRegistry::snapshot(std::uint64_t rkey, RegionSnapshot* out) const {
  std::shared_lock lock(mu_);
  const auto it = regions_.find(rkey);
  if (it == regions_.end()) return false;
  out->owner = it->second.owner;
  out->base = it->second.base;
  out->size = it->second.size;
  return true;
}

std::size_t RegionRegistry::live_count() const {
  std::shared_lock lock(mu_);
  return regions_.size();
}

}  // namespace fompi::rdma

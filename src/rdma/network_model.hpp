// Gemini-like network cost model.
//
// Parameter values are taken from the paper's measured performance
// functions on Blue Waters (Cray XE6, Gemini 3D torus):
//   P_put = 0.16 ns/B * s + 1.0 us          (Sec 3.1)
//   P_get = 0.17 ns/B * s + 1.9 us
//   injection overhead: 416 ns inter-node, 80 ns intra-node (Sec 3.1.2)
//   P_acc,sum = 28 ns/B * s + 2.4 us, P_CAS = 2.4 us (Sec 3.1.3)
// plus the DMAPP protocol change visible in Fig 4a/5b: small transfers go
// through FMA (low latency); transfers above a threshold switch to the BTE
// bulk engine (extra setup, better asymptotic bandwidth).
//
// This model drives (a) the latency injector of the simulated NIC, so that
// real-time benchmarks of the real code path reproduce the paper's curve
// shapes, and (b) the discrete-event simulator for scaling experiments.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace fompi::rdma {

struct NetworkModel {
  // --- inter-node ("DMAPP") parameters -----------------------------------
  double inter_overhead_ns = 416.0;   ///< origin injection overhead per op
  double put_base_ns = 1000.0;        ///< small-put end-to-end latency
  double put_byte_ns = 0.16;          ///< put serialization per byte
  double get_base_ns = 1900.0;        ///< small-get end-to-end latency
  double get_byte_ns = 0.17;          ///< get serialization per byte
  double amo_base_ns = 2400.0;        ///< network round trip for one AMO
  double fma_chunk_bytes = 64.0;      ///< FMA immediate chunk size
  double fma_chunk_ns = 10.0;         ///< extra per-chunk cost within FMA
  std::size_t bte_threshold = 4096;   ///< FMA -> BTE protocol switch
  double bte_setup_ns = 1100.0;       ///< BTE descriptor setup cost
  double bte_byte_ns = 0.145;         ///< BTE per-byte cost (higher BW)

  // --- intra-node ("XPMEM") parameters ------------------------------------
  double intra_overhead_ns = 80.0;    ///< per-op software overhead
  double intra_base_ns = 350.0;       ///< small copy latency (load/store)
  double intra_byte_ns = 0.08;        ///< memcpy per-byte cost
  double intra_amo_ns = 120.0;        ///< CPU atomic on a shared line

  /// Time from issue until a put of `bytes` is committed in remote memory.
  double put_latency_ns(std::size_t bytes) const noexcept {
    if (bytes >= bte_threshold)
      return bte_setup_ns + bte_byte_ns * static_cast<double>(bytes);
    const double chunks = static_cast<double>(bytes) / fma_chunk_bytes;
    return put_base_ns + fma_chunk_ns * chunks +
           put_byte_ns * static_cast<double>(bytes);
  }

  /// Time from issue until a get of `bytes` has landed in local memory.
  double get_latency_ns(std::size_t bytes) const noexcept {
    if (bytes >= bte_threshold)
      return get_base_ns + bte_setup_ns - put_base_ns +
             bte_byte_ns * static_cast<double>(bytes);
    const double chunks = static_cast<double>(bytes) / fma_chunk_bytes;
    return get_base_ns + fma_chunk_ns * chunks +
           get_byte_ns * static_cast<double>(bytes);
  }

  /// Remote AMO completion latency (8-byte operand).
  double amo_latency_ns() const noexcept { return amo_base_ns; }

  // --- vectored (chained-descriptor) transfers ----------------------------
  // Gemini FMA descriptors can be chained behind a single doorbell: a
  // vectored op pays the base latency once plus a small per-descriptor
  // chain cost, instead of the full base latency per fragment. This is the
  // hardware mechanism the datatype path exploits (Sec 2.4).
  double vec_chain_ns = 45.0;  ///< each chained fragment beyond the first

  /// Completion latency of a vectored put: `nfrags` chained fragments
  /// totalling `total_bytes` behind one doorbell.
  double put_vec_latency_ns(std::size_t nfrags,
                            std::size_t total_bytes) const noexcept {
    const double chain =
        nfrags > 1 ? vec_chain_ns * static_cast<double>(nfrags - 1) : 0.0;
    return put_latency_ns(total_bytes) + chain;
  }

  double get_vec_latency_ns(std::size_t nfrags,
                            std::size_t total_bytes) const noexcept {
    const double chain =
        nfrags > 1 ? vec_chain_ns * static_cast<double>(nfrags - 1) : 0.0;
    return get_latency_ns(total_bytes) + chain;
  }

  double intra_vec_latency_ns(std::size_t nfrags,
                              std::size_t total_bytes) const noexcept {
    const double chain =
        nfrags > 1 ? vec_chain_ns * static_cast<double>(nfrags - 1) : 0.0;
    return intra_latency_ns(total_bytes) + chain;
  }

  double intra_latency_ns(std::size_t bytes) const noexcept {
    return intra_base_ns + intra_byte_ns * static_cast<double>(bytes);
  }

  // --- throughput mode: batched doorbells and multi-channel striping -------
  // Coalesced issue (Nic::batch_begin/batch_flush or NicConfig.auto_batch)
  // chains descriptors behind ONE doorbell, like vectored ops but across
  // independent operations: the software+doorbell overhead is paid once per
  // batch and each extra descriptor costs batch_chain_ns on the wire.
  // Slingshot-class NICs (RAMC) additionally expose several independent
  // ordered memory channels; a chained batch drains round-robin across
  // them, and large BTE transfers stripe their payload over all channels at
  // the cost of one extra per-channel descriptor setup.
  double batch_chain_ns = 45.0;    ///< per extra descriptor behind a doorbell
  double stripe_chunk_ns = 120.0;  ///< per extra channel: BTE stripe setup

  /// Wire time of an n-descriptor chained batch: the descriptors beyond the
  /// first drain round-robin over `channels` independent channels, so each
  /// channel serializes only ceil((n-1)/channels) chain links.
  double batch_chain_latency_ns(std::size_t ndesc, int channels) const noexcept {
    if (ndesc <= 1) return 0.0;
    const std::size_t ch = channels < 1 ? 1 : static_cast<std::size_t>(channels);
    const std::size_t links = ndesc - 1;
    return batch_chain_ns * static_cast<double>((links + ch - 1) / ch);
  }

  /// Put latency with the payload striped round-robin over `channels`; BTE
  /// transfers split their byte stream per channel (setup replicated per
  /// stripe), FMA-sized transfers are never striped (single ordered
  /// channel keeps per-target ordering, RAMC-style).
  double put_striped_latency_ns(std::size_t bytes, int channels) const noexcept {
    if (channels <= 1 || bytes < bte_threshold) return put_latency_ns(bytes);
    const double per =
        static_cast<double>(bytes) / static_cast<double>(channels);
    return bte_setup_ns + stripe_chunk_ns * static_cast<double>(channels - 1) +
           bte_byte_ns * per;
  }

  double get_striped_latency_ns(std::size_t bytes, int channels) const noexcept {
    if (channels <= 1 || bytes < bte_threshold) return get_latency_ns(bytes);
    const double per =
        static_cast<double>(bytes) / static_cast<double>(channels);
    return get_base_ns + bte_setup_ns - put_base_ns +
           stripe_chunk_ns * static_cast<double>(channels - 1) +
           bte_byte_ns * per;
  }

  /// FMA cost of a put ignoring the protocol threshold (adaptive tuner's
  /// objective function needs both branches at every candidate size).
  double put_fma_cost_ns(std::size_t bytes) const noexcept {
    const double chunks = static_cast<double>(bytes) / fma_chunk_bytes;
    return put_base_ns + fma_chunk_ns * chunks +
           put_byte_ns * static_cast<double>(bytes);
  }
  /// BTE cost of a put ignoring the protocol threshold.
  double put_bte_cost_ns(std::size_t bytes) const noexcept {
    return bte_setup_ns + bte_byte_ns * static_cast<double>(bytes);
  }
};

/// Throughput-mode configuration of one simulated NIC (all default values
/// preserve the latency-tuned PR-5 behaviour bit for bit).
struct NicConfig {
  /// Independent ordered NIC channels (>= 1). Chained batches drain
  /// round-robin across channels; BTE-sized transfers stripe their payload.
  int channels = 1;
  /// Coalesce ops issued between synchronization points into one doorbell
  /// (an explicit Nic::batch_begin() scope batches regardless).
  bool auto_batch = false;
  /// Max descriptors chained behind one doorbell before an implicit flush.
  std::size_t batch_capacity = 64;
  /// Auto-tune protocol thresholds from the observed op-size histogram.
  bool adaptive = false;
  /// Ops between retunes of the adaptive thresholds.
  std::uint64_t adapt_period = 1024;
  /// Static override of the FMA->BTE switch point (0 = keep the model's).
  std::size_t bte_threshold_override = 0;
  /// Ops at least this large bypass an open batch and flush immediately
  /// (BTE transfers get their own doorbell). 0 = track the (possibly
  /// adaptive) bte_threshold.
  std::size_t batch_cutoff_override = 0;
};

/// How the simulated NIC charges model time to the running code.
enum class Injection : std::uint8_t {
  none,   ///< no delays: functional testing mode, fastest
  model,  ///< spin-wait the modeled times: benchmark mode
};

/// When remotely written data becomes visible at the target.
enum class Delivery : std::uint8_t {
  immediate,  ///< visible at issue (strongest; what XPMEM gives)
  deferred,   ///< visible only once the origin completes the op
              ///< (weakest legal RDMA behaviour; failure-injection mode)
};

/// Typed outcome of an operation, surfaced by the error-returning NIC and
/// window APIs (wait_status/test_status/gsync_status, *_checked). The
/// legacy void APIs map every non-ok status to a thrown Error of the
/// matching ErrClass.
enum class OpStatus : std::uint8_t {
  ok,         ///< completed successfully
  pending,    ///< not complete yet (test_status only)
  retired,    ///< handle already retired or stale (ABA tag mismatch)
  timeout,    ///< NIC timeout / dropped doorbell: retry budget exhausted
  cq_error,   ///< completion-queue error: retry budget exhausted
  peer_dead,  ///< the target rank is dead (fabric liveness epoch)
  // Service-layer statuses (src/kv): never produced by the NIC itself, but
  // carried through the same typed-status plumbing so clients handle one
  // status space end to end.
  retry_routing,  ///< op raced a routing reconfiguration; reissue after the
                  ///< client refreshed its {generation, table} pair
  data_loss,      ///< every copy of the addressed data is on dead ranks
};

const char* to_string(OpStatus st) noexcept;

/// Kinds of injectable faults. The transient kinds (nic_timeout, cq_error,
/// dropped_doorbell) are retried by the NIC with exponential backoff up to
/// FaultPlan::retry_budget; latency_spike only stretches the modeled
/// completion time of the affected op.
enum class FaultKind : std::uint8_t {
  none,
  nic_timeout,       ///< FMA transaction timed out at the origin
  cq_error,          ///< the CQ reported an error completion
  dropped_doorbell,  ///< doorbell write lost; op re-rung after a timeout
  latency_spike,     ///< op completes, but spike_scale times slower
};

const char* to_string(FaultKind k) noexcept;

/// Seeded, deterministic fault schedule, composable with the Injection and
/// Delivery knobs. Faults fire at FIXED per-rank op indices drawn from
/// Rng(seed, rank) within [0, horizon_ops) — not per-op probability draws —
/// so the final fault counters are an exact function of the seed as long as
/// each rank issues at least horizon_ops operations, immune to scheduling
/// nondeterminism in CAS-retry loops.
struct FaultPlan {
  std::uint64_t seed = 0;
  /// Transient fault sites scheduled per rank (0 disables transients).
  int transient_faults_per_rank = 0;
  /// Fault op-indices are drawn uniformly from [0, horizon_ops).
  std::uint64_t horizon_ops = 256;
  /// Consecutive injections per fault site are drawn from [1, max_repeats].
  /// Sites with repeats <= retry_budget are survivable; sites beyond the
  /// budget retire the op with a typed failure status.
  int max_repeats = 1;
  /// NIC retransmission budget per op (bounded exponential backoff).
  int retry_budget = 4;
  /// Modeled-latency multiplier applied by latency_spike faults.
  double spike_scale = 8.0;
  /// Rank scheduled to die (or hang) at its first issued op at-or-after
  /// kill_at_op (-1 = nobody dies).
  int kill_rank = -1;
  std::uint64_t kill_at_op = 0;
  /// Additional scheduled deaths beyond kill_rank — multi-failure chaos
  /// (owner+replica double kills, coordinator death mid-recovery). Each
  /// site fires at that rank's first issued operation at-or-after at_op.
  struct KillSite {
    int rank = -1;
    std::uint64_t at_op = 0;
  };
  std::vector<KillSite> kills;
  /// Instead of dying (RankKilledError), the rank parks in an abortable
  /// spin — a silent hang, broken only by the fabric hang watchdog.
  bool hang_instead_of_kill = false;

  bool enabled() const noexcept {
    return transient_faults_per_rank > 0 || kill_rank >= 0 || !kills.empty();
  }
  /// Earliest op index at which `rank` is scheduled to die, folding
  /// kill_rank and the kills list (~0 = this rank never dies).
  std::uint64_t kill_at(int rank) const noexcept {
    std::uint64_t at = ~std::uint64_t{0};
    if (rank == kill_rank) at = kill_at_op;
    for (const auto& k : kills) {
      if (k.rank == rank && k.at_op < at) at = k.at_op;
    }
    return at;
  }
};

}  // namespace fompi::rdma

// Communication functions (Sec 2.4): put/get with the contiguous fast path
// and the full datatype lowering, plus request-based rput/rget.
//
// All plain puts/gets are issued as implicit nonblocking NIC operations and
// completed in bulk by the next synchronization (fence, unlock, flush,
// complete) — mirroring foMPI, where DMAPP nbi operations are closed by
// gsync. Request-based variants use explicit handles.
//
// The datatype path lowers both sides through the allocation-free
// pair_layouts() walk (cached block lists, no heap block vectors) and then
// picks a transfer strategy per call:
//   * vectored — ship the fragment pairs as one chained NIC op behind a
//     single doorbell (put_nbv / get_nbv);
//   * pack     — when the remote side is one contiguous block and fragments
//     are small and numerous, gather the origin into a recycled staging
//     buffer and issue one contiguous transfer (puts), or fetch the block
//     and scatter it locally (gets).
// The choice comes from perf::DatatypePathModel so it tracks the modeled
// chained-descriptor cost. For static windows (created/allocated/shared)
// resolve_target() is hoisted out of the fragment loop: one descriptor and
// one span bounds check cover the whole transfer. Dynamic windows keep the
// per-fragment resolution, since fragments may land in different attached
// regions.
#include "core/window.hpp"

#include "common/instr.hpp"
#include "core/win_internal.hpp"
#include "perfmodel/cost_functions.hpp"

namespace fompi::core {

namespace {

constexpr perf::DatatypePathModel kDtPath{};

/// Bytes a transfer of `count` elements of `t` may touch past its base
/// displacement — the single hoisted bounds check of the static-window path.
std::size_t layout_span(const dt::Datatype& t, int count) {
  if (count <= 0) return 0;
  return static_cast<std::size_t>(count - 1) * t.extent() + t.span_end();
}

/// Notes an upcoming capacity growth of a recycled scratch vector, so the
/// steady-state issue path stays observably allocation-free.
void note_growth(std::size_t need, std::size_t capacity) {
  if (need > capacity) count(Op::pool_grow);
}

}  // namespace

void Win::resolve_target(int target, std::size_t tdisp, std::size_t len,
                         rdma::RegionDesc* desc, std::size_t* offset) {
  Shared& s = sh();
  switch (s.kind) {
    case WinKind::created:
    case WinKind::shared_mem: {
      const auto idx = static_cast<std::size_t>(target);
      FOMPI_REQUIRE(tdisp + len <= s.sizes[idx], ErrClass::rma_range,
                    "access beyond the target window");
      *desc = s.kind == WinKind::created ? s.data_desc[idx]
                                         : s.heap->rank_desc(target);
      *offset = s.kind == WinKind::created ? tdisp : s.heap_off + tdisp;
      return;
    }
    case WinKind::allocated: {
      // O(1) metadata: one heap descriptor per rank plus the symmetric
      // offset — no per-window descriptor table (Sec 2.2).
      FOMPI_REQUIRE(tdisp + len <= s.alloc_bytes, ErrClass::rma_range,
                    "access beyond the target window");
      *desc = s.heap->rank_desc(target);
      *offset = s.heap_off + tdisp;
      return;
    }
    case WinKind::dynamic:
      resolve_dynamic(target, tdisp, len, desc, offset);
      return;
  }
  raise(ErrClass::internal, "bad window kind");
}

void Win::put(const void* origin, std::size_t len, int target,
              std::size_t tdisp) {
  require_access(target);
  rdma::RegionDesc desc;
  std::size_t off = 0;
  resolve_target(target, tdisp, len, &desc, &off);
  nic().put_nbi(target, desc, off, origin, len);
}

void Win::get(void* origin, std::size_t len, int target, std::size_t tdisp) {
  require_access(target);
  rdma::RegionDesc desc;
  std::size_t off = 0;
  resolve_target(target, tdisp, len, &desc, &off);
  nic().get_nbi(target, desc, off, origin, len);
}

void Win::issue_put(const void* origin, int ocount, const dt::Datatype& otype,
                    int target, std::size_t tdisp, int tcount,
                    const dt::Datatype& ttype,
                    std::vector<rdma::Handle>* collect) {
  require_access(target);
  const std::size_t len = otype.size() * static_cast<std::size_t>(ocount);
  FOMPI_REQUIRE(len == ttype.size() * static_cast<std::size_t>(tcount),
                ErrClass::type, "put: origin/target payload mismatch");
  // Fast path: both sides contiguous — one transport operation, no
  // flattening (the ~173-instruction path the paper highlights).
  if (otype.is_contiguous() && ttype.is_contiguous()) {
    rdma::RegionDesc desc;
    std::size_t off = 0;
    resolve_target(target, tdisp, len, &desc, &off);
    if (collect != nullptr) {
      collect->push_back(nic().put_nb(target, desc, off, origin, len));
    } else {
      nic().put_nbi(target, desc, off, origin, len);
    }
    return;
  }
  if (len == 0) return;
  const auto* obase = static_cast<const std::byte*>(origin);
  rdma::Nic& n = nic();

  if (sh().kind == WinKind::dynamic) {
    dt::pair_layouts(
        otype, ocount, ttype, tcount, tdisp,
        [&](std::size_t ooff, std::size_t toff, std::size_t flen) {
          rdma::RegionDesc desc;
          std::size_t off = 0;
          resolve_target(target, toff, flen, &desc, &off);
          if (collect != nullptr) {
            collect->push_back(n.put_nb(target, desc, off, obase + ooff, flen));
          } else {
            n.put_nbi(target, desc, off, obase + ooff, flen);
          }
        });
    return;
  }

  // Static window: one descriptor and one bounds check cover the span.
  rdma::RegionDesc desc;
  std::size_t off = 0;
  const std::size_t span = layout_span(ttype, tcount);
  resolve_target(target, tdisp, span, &desc, &off);
  RankState& rs = st();

  if (ttype.is_contiguous() &&
      kDtPath.choose_put(otype.block_count() *
                             static_cast<std::size_t>(ocount),
                         len) == perf::DatatypePathModel::Strategy::pack) {
    // Pack protocol: gather the origin layout into the recycled staging
    // buffer, one contiguous transfer. The buffer is reusable as soon as
    // the NIC returns — it either applies the put at issue or stages the
    // payload itself (deferred delivery).
    note_growth(len, rs.dt_staging.capacity());
    rs.dt_staging.resize(len);
    otype.pack(origin, ocount, rs.dt_staging.data());
    count(Op::packed_bytes, len);
    if (collect != nullptr) {
      collect->push_back(n.put_nb(target, desc, off, rs.dt_staging.data(),
                                  len));
    } else {
      n.put_nbi(target, desc, off, rs.dt_staging.data(), len);
    }
    return;
  }

  // Vectored issue: lower to fragment pairs once, ship them as one chained
  // NIC op behind a single doorbell.
  rs.frag_scratch.clear();
  dt::pair_layouts(otype, ocount, ttype, tcount, tdisp,
                   [&](std::size_t ooff, std::size_t toff, std::size_t flen) {
                     note_growth(rs.frag_scratch.size() + 1,
                                 rs.frag_scratch.capacity());
                     rs.frag_scratch.push_back({ooff, toff - tdisp, flen});
                   });
  if (collect != nullptr) {
    collect->push_back(n.put_nbv(target, desc, off, span, origin,
                                 rs.frag_scratch.data(),
                                 rs.frag_scratch.size()));
  } else {
    n.put_nbiv(target, desc, off, span, origin, rs.frag_scratch.data(),
               rs.frag_scratch.size());
  }
}

void Win::issue_get(void* origin, int ocount, const dt::Datatype& otype,
                    int target, std::size_t tdisp, int tcount,
                    const dt::Datatype& ttype,
                    std::vector<rdma::Handle>* collect) {
  require_access(target);
  const std::size_t len = otype.size() * static_cast<std::size_t>(ocount);
  FOMPI_REQUIRE(len == ttype.size() * static_cast<std::size_t>(tcount),
                ErrClass::type, "get: origin/target payload mismatch");
  if (otype.is_contiguous() && ttype.is_contiguous()) {
    rdma::RegionDesc desc;
    std::size_t off = 0;
    resolve_target(target, tdisp, len, &desc, &off);
    if (collect != nullptr) {
      collect->push_back(nic().get_nb(target, desc, off, origin, len));
    } else {
      nic().get_nbi(target, desc, off, origin, len);
    }
    return;
  }
  if (len == 0) return;
  auto* obase = static_cast<std::byte*>(origin);
  rdma::Nic& n = nic();

  if (sh().kind == WinKind::dynamic) {
    dt::pair_layouts(
        otype, ocount, ttype, tcount, tdisp,
        [&](std::size_t ooff, std::size_t toff, std::size_t flen) {
          rdma::RegionDesc desc;
          std::size_t off = 0;
          resolve_target(target, toff, flen, &desc, &off);
          if (collect != nullptr) {
            collect->push_back(n.get_nb(target, desc, off, obase + ooff, flen));
          } else {
            n.get_nbi(target, desc, off, obase + ooff, flen);
          }
        });
    return;
  }

  rdma::RegionDesc desc;
  std::size_t off = 0;
  const std::size_t span = layout_span(ttype, tcount);
  resolve_target(target, tdisp, span, &desc, &off);
  RankState& rs = st();

  if (ttype.is_contiguous() &&
      kDtPath.choose_get(otype.block_count() *
                             static_cast<std::size_t>(ocount),
                         len) == perf::DatatypePathModel::Strategy::pack) {
    // Unpack protocol: one contiguous fetch into the recycled staging
    // buffer, scatter locally. The scatter needs the data, so this waits
    // for the transfer — the strategy model biases against it accordingly.
    note_growth(len, rs.dt_staging.capacity());
    rs.dt_staging.resize(len);
    n.wait(n.get_nb(target, desc, off, rs.dt_staging.data(), len));
    otype.unpack(rs.dt_staging.data(), ocount, origin);
    count(Op::packed_bytes, len);
    return;
  }

  rs.frag_scratch.clear();
  dt::pair_layouts(otype, ocount, ttype, tcount, tdisp,
                   [&](std::size_t ooff, std::size_t toff, std::size_t flen) {
                     note_growth(rs.frag_scratch.size() + 1,
                                 rs.frag_scratch.capacity());
                     rs.frag_scratch.push_back({ooff, toff - tdisp, flen});
                   });
  if (collect != nullptr) {
    collect->push_back(n.get_nbv(target, desc, off, span, origin,
                                 rs.frag_scratch.data(),
                                 rs.frag_scratch.size()));
  } else {
    n.get_nbiv(target, desc, off, span, origin, rs.frag_scratch.data(),
               rs.frag_scratch.size());
  }
}

void Win::put(const void* origin, int ocount, const dt::Datatype& otype,
              int target, std::size_t tdisp, int tcount,
              const dt::Datatype& ttype) {
  issue_put(origin, ocount, otype, target, tdisp, tcount, ttype, nullptr);
}

void Win::get(void* origin, int ocount, const dt::Datatype& otype, int target,
              std::size_t tdisp, int tcount, const dt::Datatype& ttype) {
  issue_get(origin, ocount, otype, target, tdisp, tcount, ttype, nullptr);
}

RmaRequest Win::rput(const void* origin, std::size_t len, int target,
                     std::size_t tdisp) {
  require_access(target);
  RmaRequest req;
  req.nic_ = &nic();
  // Issued by byte length directly: routing through the int-count datatype
  // interface would silently truncate lengths >= 2 GiB.
  rdma::RegionDesc desc;
  std::size_t off = 0;
  resolve_target(target, tdisp, len, &desc, &off);
  req.handles_.push_back(nic().put_nb(target, desc, off, origin, len));
  return req;
}

RmaRequest Win::rget(void* origin, std::size_t len, int target,
                     std::size_t tdisp) {
  require_access(target);
  RmaRequest req;
  req.nic_ = &nic();
  rdma::RegionDesc desc;
  std::size_t off = 0;
  resolve_target(target, tdisp, len, &desc, &off);
  req.handles_.push_back(nic().get_nb(target, desc, off, origin, len));
  return req;
}

bool RmaRequest::test() {
  FOMPI_REQUIRE(valid(), ErrClass::arg, "test on an invalid request");
  while (!handles_.empty()) {
    if (!nic_->test(handles_.back())) return false;
    handles_.pop_back();
  }
  nic_ = nullptr;
  return true;
}

void RmaRequest::wait() {
  FOMPI_REQUIRE(valid(), ErrClass::arg, "wait on an invalid request");
  for (rdma::Handle h : handles_) nic_->wait(h);
  handles_.clear();
  nic_ = nullptr;
}

}  // namespace fompi::core

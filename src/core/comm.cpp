// Communication functions (Sec 2.4): put/get with the contiguous fast path
// and the full datatype lowering, plus request-based rput/rget.
//
// All plain puts/gets are issued as implicit nonblocking NIC operations and
// completed in bulk by the next synchronization (fence, unlock, flush,
// complete) — mirroring foMPI, where DMAPP nbi operations are closed by
// gsync. Request-based variants use explicit handles.
#include "core/window.hpp"

#include "common/instr.hpp"
#include "core/win_internal.hpp"

namespace fompi::core {

void Win::resolve_target(int target, std::size_t tdisp, std::size_t len,
                         rdma::RegionDesc* desc, std::size_t* offset) {
  Shared& s = sh();
  switch (s.kind) {
    case WinKind::created:
    case WinKind::shared_mem: {
      const auto idx = static_cast<std::size_t>(target);
      FOMPI_REQUIRE(tdisp + len <= s.sizes[idx], ErrClass::rma_range,
                    "access beyond the target window");
      *desc = s.kind == WinKind::created ? s.data_desc[idx]
                                         : s.heap->rank_desc(target);
      *offset = s.kind == WinKind::created ? tdisp : s.heap_off + tdisp;
      return;
    }
    case WinKind::allocated: {
      // O(1) metadata: one heap descriptor per rank plus the symmetric
      // offset — no per-window descriptor table (Sec 2.2).
      FOMPI_REQUIRE(tdisp + len <= s.alloc_bytes, ErrClass::rma_range,
                    "access beyond the target window");
      *desc = s.heap->rank_desc(target);
      *offset = s.heap_off + tdisp;
      return;
    }
    case WinKind::dynamic:
      resolve_dynamic(target, tdisp, len, desc, offset);
      return;
  }
  raise(ErrClass::internal, "bad window kind");
}

void Win::put(const void* origin, std::size_t len, int target,
              std::size_t tdisp) {
  require_access(target);
  rdma::RegionDesc desc;
  std::size_t off = 0;
  resolve_target(target, tdisp, len, &desc, &off);
  nic().put_nbi(target, desc, off, origin, len);
}

void Win::get(void* origin, std::size_t len, int target, std::size_t tdisp) {
  require_access(target);
  rdma::RegionDesc desc;
  std::size_t off = 0;
  resolve_target(target, tdisp, len, &desc, &off);
  nic().get_nbi(target, desc, off, origin, len);
}

void Win::issue_put(const void* origin, int ocount, const dt::Datatype& otype,
                    int target, std::size_t tdisp, int tcount,
                    const dt::Datatype& ttype,
                    std::vector<rdma::Handle>* collect) {
  require_access(target);
  // Fast path: both sides contiguous — one transport operation, no
  // flattening (the ~173-instruction path the paper highlights).
  if (otype.is_contiguous() && ttype.is_contiguous()) {
    const std::size_t len = otype.size() * static_cast<std::size_t>(ocount);
    FOMPI_REQUIRE(len == ttype.size() * static_cast<std::size_t>(tcount),
                  ErrClass::type, "put: origin/target payload mismatch");
    rdma::RegionDesc desc;
    std::size_t off = 0;
    resolve_target(target, tdisp, len, &desc, &off);
    if (collect != nullptr) {
      collect->push_back(nic().put_nb(target, desc, off, origin, len));
    } else {
      nic().put_nbi(target, desc, off, origin, len);
    }
    return;
  }
  // Datatype path: lower both sides to minimal block lists, one operation
  // per contiguous fragment pair (the MPITypes strategy).
  std::vector<dt::Block> oblocks, tblocks;
  otype.flatten(0, ocount, oblocks);
  ttype.flatten(tdisp, tcount, tblocks);
  const auto* obase = static_cast<const std::byte*>(origin);
  dt::pair_blocks(oblocks, tblocks,
                  [&](std::size_t ooff, std::size_t toff, std::size_t len) {
                    rdma::RegionDesc desc;
                    std::size_t off = 0;
                    resolve_target(target, toff, len, &desc, &off);
                    if (collect != nullptr) {
                      collect->push_back(
                          nic().put_nb(target, desc, off, obase + ooff, len));
                    } else {
                      nic().put_nbi(target, desc, off, obase + ooff, len);
                    }
                  });
}

void Win::issue_get(void* origin, int ocount, const dt::Datatype& otype,
                    int target, std::size_t tdisp, int tcount,
                    const dt::Datatype& ttype,
                    std::vector<rdma::Handle>* collect) {
  require_access(target);
  if (otype.is_contiguous() && ttype.is_contiguous()) {
    const std::size_t len = otype.size() * static_cast<std::size_t>(ocount);
    FOMPI_REQUIRE(len == ttype.size() * static_cast<std::size_t>(tcount),
                  ErrClass::type, "get: origin/target payload mismatch");
    rdma::RegionDesc desc;
    std::size_t off = 0;
    resolve_target(target, tdisp, len, &desc, &off);
    if (collect != nullptr) {
      collect->push_back(nic().get_nb(target, desc, off, origin, len));
    } else {
      nic().get_nbi(target, desc, off, origin, len);
    }
    return;
  }
  std::vector<dt::Block> oblocks, tblocks;
  otype.flatten(0, ocount, oblocks);
  ttype.flatten(tdisp, tcount, tblocks);
  auto* obase = static_cast<std::byte*>(origin);
  dt::pair_blocks(oblocks, tblocks,
                  [&](std::size_t ooff, std::size_t toff, std::size_t len) {
                    rdma::RegionDesc desc;
                    std::size_t off = 0;
                    resolve_target(target, toff, len, &desc, &off);
                    if (collect != nullptr) {
                      collect->push_back(
                          nic().get_nb(target, desc, off, obase + ooff, len));
                    } else {
                      nic().get_nbi(target, desc, off, obase + ooff, len);
                    }
                  });
}

void Win::put(const void* origin, int ocount, const dt::Datatype& otype,
              int target, std::size_t tdisp, int tcount,
              const dt::Datatype& ttype) {
  issue_put(origin, ocount, otype, target, tdisp, tcount, ttype, nullptr);
}

void Win::get(void* origin, int ocount, const dt::Datatype& otype, int target,
              std::size_t tdisp, int tcount, const dt::Datatype& ttype) {
  issue_get(origin, ocount, otype, target, tdisp, tcount, ttype, nullptr);
}

RmaRequest Win::rput(const void* origin, std::size_t len, int target,
                     std::size_t tdisp) {
  RmaRequest req;
  req.nic_ = &nic();
  issue_put(origin, static_cast<int>(len), dt::Datatype::u8(), target, tdisp,
            static_cast<int>(len), dt::Datatype::u8(), &req.handles_);
  return req;
}

RmaRequest Win::rget(void* origin, std::size_t len, int target,
                     std::size_t tdisp) {
  RmaRequest req;
  req.nic_ = &nic();
  issue_get(origin, static_cast<int>(len), dt::Datatype::u8(), target, tdisp,
            static_cast<int>(len), dt::Datatype::u8(), &req.handles_);
  return req;
}

bool RmaRequest::test() {
  FOMPI_REQUIRE(valid(), ErrClass::arg, "test on an invalid request");
  while (!handles_.empty()) {
    if (!nic_->test(handles_.back())) return false;
    handles_.pop_back();
  }
  nic_ = nullptr;
  return true;
}

void RmaRequest::wait() {
  FOMPI_REQUIRE(valid(), ErrClass::arg, "wait on an invalid request");
  for (rdma::Handle h : handles_) nic_->wait(h);
  handles_.clear();
  nic_ = nullptr;
}

}  // namespace fompi::core

// Element types and reduction operations for the accumulate family.
//
// MPI accumulates apply a predefined reduction elementwise. The simulated
// NIC (like DMAPP) accelerates only 8-byte integer SUM/AND/OR/XOR/REPLACE;
// every other (op, type) pair takes foMPI's fallback protocol
// (lock target region - get - combine locally - put - unlock). The split is
// what produces the two distinct curves of Fig 6a.
#pragma once

#include <cstdint>
#include <cstring>
#include <type_traits>

#include "common/error.hpp"
#include "rdma/amo.hpp"

namespace fompi {

/// Predefined element types usable with accumulate operations.
enum class Elem : std::uint8_t { i32, i64, u64, f32, f64 };

/// Predefined reduction operations.
enum class RedOp : std::uint8_t {
  sum, prod, min, max, band, bor, bxor, replace, no_op
};

const char* to_string(Elem e) noexcept;
const char* to_string(RedOp op) noexcept;

inline std::size_t elem_size(Elem e) noexcept {
  switch (e) {
    case Elem::i32: case Elem::f32: return 4;
    case Elem::i64: case Elem::u64: case Elem::f64: return 8;
  }
  return 0;
}

/// True if the (op, type) pair maps to one hardware AMO per element.
inline bool amo_accelerated(Elem e, RedOp op) noexcept {
  const bool int64 = e == Elem::i64 || e == Elem::u64;
  if (!int64) return false;
  switch (op) {
    case RedOp::sum:
    case RedOp::band:
    case RedOp::bor:
    case RedOp::bxor:
    case RedOp::replace:
      return true;
    default:
      return false;
  }
}

/// The AMO opcode implementing an accelerated (op, 8-byte int) pair.
inline rdma::AmoOp amo_opcode(RedOp op) {
  switch (op) {
    case RedOp::sum:     return rdma::AmoOp::fetch_add;
    case RedOp::band:    return rdma::AmoOp::fetch_and;
    case RedOp::bor:     return rdma::AmoOp::fetch_or;
    case RedOp::bxor:    return rdma::AmoOp::fetch_xor;
    case RedOp::replace: return rdma::AmoOp::swap;
    default: break;
  }
  raise(ErrClass::op, "reduction op is not hardware-accelerated");
}

namespace detail {

template <class T>
T combine_typed(RedOp op, T acc, T v) {
  switch (op) {
    case RedOp::sum:     return static_cast<T>(acc + v);
    case RedOp::prod:    return static_cast<T>(acc * v);
    case RedOp::min:     return v < acc ? v : acc;
    case RedOp::max:     return v > acc ? v : acc;
    case RedOp::replace: return v;
    case RedOp::no_op:   return acc;
    case RedOp::band:
    case RedOp::bor:
    case RedOp::bxor:
      if constexpr (std::is_integral_v<T>) {
        switch (op) {
          case RedOp::band: return static_cast<T>(acc & v);
          case RedOp::bor:  return static_cast<T>(acc | v);
          default:          return static_cast<T>(acc ^ v);
        }
      } else {
        raise(ErrClass::op, "bitwise reduction on floating-point type");
      }
  }
  raise(ErrClass::op, "bad reduction op");
}

}  // namespace detail

/// Combines `target` (accumulator) with `origin` elementwise:
/// target[i] = op(target[i], origin[i]) for `n` elements of type `e`.
void combine(Elem e, RedOp op, void* target, const void* origin,
             std::size_t n);

}  // namespace fompi

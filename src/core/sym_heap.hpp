// Symmetric heap for allocated windows (Sec 2.2, "Allocated Windows").
//
// The paper's protocol: a leader draws a random base address, broadcasts
// it, every process tries to mmap() that exact address, and an Allreduce
// decides whether to retry — yielding identical base addresses everywhere,
// so remote access needs O(1) metadata instead of Ω(p) per-rank bases.
//
// In the simulation all ranks share one OS address space, so "the same
// virtual address in every process" becomes "the same offset into every
// rank's heap segment": one arena holds p equally-sized segments, each
// registered once, and a window allocation is a single offset valid for
// every rank. The random-propose / try / allreduce / retry loop is kept
// verbatim (including its failure path, which tests exercise by filling
// the heap).
#pragma once

#include <cstddef>
#include <map>
#include <mutex>
#include <vector>

#include "common/buffer.hpp"
#include "common/rng.hpp"
#include "fabric/fabric.hpp"
#include "rdma/region.hpp"

namespace fompi::core {

class SymHeap {
 public:
  /// Builds the arena and registers every rank's segment. Constructed by
  /// one rank; shared by all (fabric extension slot).
  SymHeap(rdma::Domain& domain, std::size_t per_rank_bytes);

  std::size_t capacity() const noexcept { return per_rank_; }

  /// Collective: allocates `bytes` at one symmetric offset on every rank
  /// using the propose/try/allreduce protocol. Returns the offset.
  /// `attempts_out`, if nonnull, receives the number of proposal rounds
  /// (of interest to the ablation bench). Raises FOMPI_ERR_NO_MEM after
  /// too many failed proposals.
  std::size_t allocate(fabric::RankCtx& ctx, std::size_t bytes,
                       int* attempts_out = nullptr);

  /// Collective: releases an allocation made by allocate().
  void deallocate(fabric::RankCtx& ctx, std::size_t offset);

  /// Local address of (rank, offset).
  std::byte* rank_ptr(int rank, std::size_t offset);
  /// The rank's registered segment descriptor (remote access metadata —
  /// one descriptor per rank for the whole heap, amortized O(1) per
  /// window).
  const rdma::RegionDesc& rank_desc(int rank) const;

  /// Bytes currently allocated (per rank).
  std::size_t allocated_bytes() const;

 private:
  bool range_free(std::size_t offset, std::size_t bytes) const;

  std::size_t per_rank_;
  AlignedBuffer arena_;
  std::vector<rdma::RegionDesc> descs_;
  mutable std::mutex mu_;
  std::map<std::size_t, std::size_t> live_;  // offset -> length
  Rng propose_rng_;
};

}  // namespace fompi::core

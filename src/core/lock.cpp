// Passive target synchronization: the two-level lock protocol (Sec 2.3,
// Fig 3) and the flush family.
//
// One global lock word lives at the master (rank 0 of the window); its low
// half counts lock_all (global shared) holders, its high half counts
// processes holding at least one exclusive lock. One local lock word per
// rank implements a reader-writer lock: MSB = writer bit, low bits = shared
// holder count. The two invariants for a local exclusive lock:
//   (1) no global shared lock may be held or acquired during it — enforced
//       by registering in the global writer half and backing off if the
//       shared half is nonzero;
//   (2) no local lock may be held — enforced by CAS(local, 0 -> WRITER).
// All retries use exponential back-off. Shared locks cost one AMO when
// uncontended; exclusive locks cost two (one if the origin already holds
// an exclusive lock); unlocks cost one (plus one for the last exclusive).
#include "core/window.hpp"

#include "common/backoff.hpp"
#include "common/instr.hpp"
#include "core/win_internal.hpp"
#include "trace/trace.hpp"

namespace fompi::core {

namespace {
constexpr int kMaster = 0;
}

void Win::lock(LockType type, int target) {
  Shared& s = sh();
  RankState& rs = st();
  FOMPI_REQUIRE(target >= 0 && target < s.nranks, ErrClass::rank,
                "lock: target out of range");
  rs.fence_active = false;  // a preceding fence acts as the closing fence
  FOMPI_REQUIRE(!rs.lock_all, ErrClass::rma_sync,
                "lock inside a lock_all epoch");
  FOMPI_REQUIRE(rs.locks.count(target) == 0, ErrClass::rma_sync,
                "lock: target already locked by this origin");
  const trace::Span tsp(trace::EvClass::lock, target,
                        type == LockType::exclusive ? 1 : 0);
  rdma::Nic& n = nic();
  const auto& tdesc = s.ctrl_desc[static_cast<std::size_t>(target)];
  const auto& mdesc = s.ctrl_desc[kMaster];

  if (type == LockType::shared) {
    // One atomic registers the shared lock; if a writer holds the lock we
    // keep the registration and wait for the writer bit to clear.
    const std::uint64_t old = n.amo(target, tdesc, CtrlLayout::kLocalLock,
                                    rdma::AmoOp::fetch_add, 1);
    if ((old & kWriterBit) != 0) {
      Backoff backoff;
      while ((n.amo(target, tdesc, CtrlLayout::kLocalLock, rdma::AmoOp::read,
                    0) &
              kWriterBit) != 0) {
        backoff.pause();
        s.fabric->check_abort();
      }
    }
  } else {
    Backoff backoff;
    while (true) {
      count(Op::protocol_branch);
      bool registered_now = false;
      if (rs.excl_held == 0) {
        // Invariant (1): register in the global writer half; back off if
        // any lock_all holder exists.
        const std::uint64_t old =
            n.amo(kMaster, mdesc, CtrlLayout::kGlobalLock,
                  rdma::AmoOp::fetch_add, kGlobalExclUnit);
        if ((old & kGlobalShrdMask) != 0) {
          n.amo(kMaster, mdesc, CtrlLayout::kGlobalLock,
                rdma::AmoOp::fetch_add, ~kGlobalExclUnit + 1);  // -unit
          backoff.pause();
          s.fabric->check_abort();
          continue;
        }
        registered_now = true;
      }
      // Invariant (2): the local lock must be completely free.
      const std::uint64_t old = n.amo(target, tdesc, CtrlLayout::kLocalLock,
                                      rdma::AmoOp::cas, kWriterBit, 0);
      if (old == 0) break;
      if (registered_now) {
        // Release the global registration while waiting, so lock_all
        // requests are not starved (the paper's two-step retry).
        n.amo(kMaster, mdesc, CtrlLayout::kGlobalLock, rdma::AmoOp::fetch_add,
              ~kGlobalExclUnit + 1);
      }
      backoff.pause();
      s.fabric->check_abort();
    }
    ++rs.excl_held;
  }
  rs.locks.emplace(target, type);
}

void Win::unlock(int target) {
  Shared& s = sh();
  RankState& rs = st();
  const auto it = rs.locks.find(target);
  FOMPI_REQUIRE(it != rs.locks.end(), ErrClass::rma_sync,
                "unlock: target not locked");
  const trace::Span tsp(trace::EvClass::unlock, target);
  // The epoch's operations must be remotely complete before the lock is
  // observable as released.
  commit_all();
  rdma::Nic& n = nic();
  const auto& tdesc = s.ctrl_desc[static_cast<std::size_t>(target)];
  if (it->second == LockType::shared) {
    n.amo(target, tdesc, CtrlLayout::kLocalLock, rdma::AmoOp::fetch_add,
          ~std::uint64_t{0});  // -1
  } else {
    n.amo(target, tdesc, CtrlLayout::kLocalLock, rdma::AmoOp::fetch_add,
          ~kWriterBit + 1);  // clear the writer bit
    --rs.excl_held;
    if (rs.excl_held == 0) {
      n.amo(kMaster, s.ctrl_desc[kMaster], CtrlLayout::kGlobalLock,
            rdma::AmoOp::fetch_add, ~kGlobalExclUnit + 1);
    }
  }
  rs.locks.erase(it);
}

void Win::lock_all() {
  Shared& s = sh();
  RankState& rs = st();
  FOMPI_REQUIRE(!rs.lock_all, ErrClass::rma_sync, "lock_all already held");
  FOMPI_REQUIRE(rs.locks.empty(), ErrClass::rma_sync,
                "lock_all while holding per-target locks");
  rs.fence_active = false;  // a preceding fence acts as the closing fence
  const trace::Span tsp(trace::EvClass::lock);
  rdma::Nic& n = nic();
  const auto& mdesc = s.ctrl_desc[kMaster];
  Backoff backoff;
  while (true) {
    const std::uint64_t old = n.amo(kMaster, mdesc, CtrlLayout::kGlobalLock,
                                    rdma::AmoOp::fetch_add, 1);
    if ((old >> 32) == 0) break;  // no exclusive holder registered
    n.amo(kMaster, mdesc, CtrlLayout::kGlobalLock, rdma::AmoOp::fetch_add,
          ~std::uint64_t{0});
    backoff.pause();
    s.fabric->check_abort();
  }
  rs.lock_all = true;
}

void Win::unlock_all() {
  Shared& s = sh();
  RankState& rs = st();
  FOMPI_REQUIRE(rs.lock_all, ErrClass::rma_sync,
                "unlock_all without lock_all");
  const trace::Span tsp(trace::EvClass::unlock);
  commit_all();
  nic().amo(kMaster, s.ctrl_desc[kMaster], CtrlLayout::kGlobalLock,
            rdma::AmoOp::fetch_add, ~std::uint64_t{0});
  rs.lock_all = false;
}

// ---------------------------------------------------------------------------
// Flush family (Sec 2.3, "Flush"): remote bulk completion + memory fence.
// All four calls share one implementation, as in foMPI.
// ---------------------------------------------------------------------------

namespace {
void require_passive(const char* what, bool lock_all, bool any_lock) {
  FOMPI_REQUIRE(lock_all || any_lock, ErrClass::rma_sync,
                std::string(what) + " requires a passive-target epoch");
}
}  // namespace

void Win::flush(int target) {
  RankState& rs = st();
  require_passive("flush", rs.lock_all, rs.locks.count(target) != 0);
  const trace::Span tsp(trace::EvClass::flush, target);
  commit_all();
}

void Win::flush_local(int target) {
  RankState& rs = st();
  require_passive("flush_local", rs.lock_all, rs.locks.count(target) != 0);
  const trace::Span tsp(trace::EvClass::flush, target);
  commit_all();
}

void Win::flush_all() {
  RankState& rs = st();
  require_passive("flush_all", rs.lock_all, !rs.locks.empty());
  const trace::Span tsp(trace::EvClass::flush);
  commit_all();
}

void Win::flush_local_all() {
  RankState& rs = st();
  require_passive("flush_local_all", rs.lock_all, !rs.locks.empty());
  const trace::Span tsp(trace::EvClass::flush);
  commit_all();
}

}  // namespace fompi::core

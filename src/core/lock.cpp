// Passive target synchronization: the two-level lock protocol (Sec 2.3,
// Fig 3) and the flush family.
//
// One global lock word lives at the master (rank 0 of the window); its low
// half counts lock_all (global shared) holders, its high half counts
// processes holding at least one exclusive lock. One local lock word per
// rank implements a reader-writer lock: MSB = writer bit, low bits = shared
// holder count. The two invariants for a local exclusive lock:
//   (1) no global shared lock may be held or acquired during it — enforced
//       by registering in the global writer half and backing off if the
//       shared half is nonzero;
//   (2) no local lock may be held — enforced by CAS(local, 0 -> WRITER).
// All retries use exponential back-off. Shared locks cost one AMO when
// uncontended; exclusive locks cost two (one if the origin already holds
// an exclusive lock); unlocks cost one (plus one for the last exclusive).
//
// Fault model (armed plans only): an exclusive acquirer additionally
// records rank+1 in the target's kLockOwner word. Spinners periodically
// probe it; if the recorded owner died mid-critical-section, exactly one
// spinner wins a CAS on the owner word (the revocation ticket) and releases
// the lock on the dead holder's behalf — clearing the writer bit and the
// holder's global exclusive registration. Limitations (see DESIGN.md): a
// dead rank is assumed to hold at most one exclusive lock, and death of the
// window master is unsupported. All of this is gated on
// FaultPlan::enabled() so the fault-free AMO counts stay exactly those
// asserted by test_instr_bounds.
#include "core/window.hpp"

#include "common/backoff.hpp"
#include "common/instr.hpp"
#include "core/win_internal.hpp"
#include "trace/trace.hpp"

namespace fompi::core {

namespace {
constexpr int kMaster = 0;
/// Spin iterations between dead-owner probes in the lock spinners (the
/// probe costs a remote read, so it stays off the common contended path).
constexpr int kOwnerProbePeriod = 16;

bool is_fault_class(ErrClass ec) noexcept {
  return ec == ErrClass::timeout || ec == ErrClass::cq ||
         ec == ErrClass::peer_dead;
}

rdma::OpStatus status_of(ErrClass ec) noexcept {
  switch (ec) {
    case ErrClass::timeout:   return rdma::OpStatus::timeout;
    case ErrClass::cq:        return rdma::OpStatus::cq_error;
    case ErrClass::peer_dead: return rdma::OpStatus::peer_dead;
    default:                  return rdma::OpStatus::ok;
  }
}
}  // namespace

void Win::try_revoke_dead_owner(int target) {
  Shared& s = sh();
  rdma::Domain& d = s.fabric->domain();
  if (d.death_epoch() == 0) return;
  rdma::Nic& n = nic();
  const auto& tdesc = s.ctrl_desc[static_cast<std::size_t>(target)];
  // The owner word is only maintained while a fault plan is armed, so a
  // nonzero value here is trustworthy.
  const std::uint64_t owner =
      n.amo(target, tdesc, CtrlLayout::kLockOwner, rdma::AmoOp::read, 0);
  if (owner == 0) return;
  const int owner_rank = static_cast<int>(owner) - 1;
  if (d.alive(owner_rank)) return;
  // Revocation ticket: exactly one spinner wins this CAS and performs the
  // release on the dead holder's behalf.
  const std::uint64_t seen = n.amo(target, tdesc, CtrlLayout::kLockOwner,
                                   rdma::AmoOp::cas, 0, owner);
  if (seen != owner) return;
  n.amo(target, tdesc, CtrlLayout::kLocalLock, rdma::AmoOp::fetch_add,
        ~kWriterBit + 1);
  n.amo(kMaster, s.ctrl_desc[kMaster], CtrlLayout::kGlobalLock,
        rdma::AmoOp::fetch_add, ~kGlobalExclUnit + 1);
}

rdma::OpStatus Win::lock_impl(LockType type, int target) {
  Shared& s = sh();
  RankState& rs = st();
  FOMPI_REQUIRE(target >= 0 && target < s.nranks, ErrClass::rank,
                "lock: target out of range");
  rs.fence_active = false;  // a preceding fence acts as the closing fence
  FOMPI_REQUIRE(!rs.lock_all, ErrClass::rma_sync,
                "lock inside a lock_all epoch");
  FOMPI_REQUIRE(rs.locks.count(target) == 0, ErrClass::rma_sync,
                "lock: target already locked by this origin");
  const trace::Span tsp(trace::EvClass::lock, target,
                        type == LockType::exclusive ? 1 : 0);
  rdma::Nic& n = nic();
  rdma::Domain& d = s.fabric->domain();
  const bool fault_on = d.config().fault.enabled();
  const auto& tdesc = s.ctrl_desc[static_cast<std::size_t>(target)];
  const auto& mdesc = s.ctrl_desc[kMaster];

  if (fault_on && d.death_epoch() != 0 && !d.alive(target)) {
    return rdma::OpStatus::peer_dead;
  }

  bool registered = false;  // holds a global exclusive registration now
  try {
    if (type == LockType::shared) {
      // One atomic registers the shared lock; if a writer holds the lock we
      // keep the registration and wait for the writer bit to clear.
      const std::uint64_t old = n.amo(target, tdesc, CtrlLayout::kLocalLock,
                                      rdma::AmoOp::fetch_add, 1);
      if ((old & kWriterBit) != 0) {
        Backoff backoff;
        int probe = 0;
        while ((n.amo(target, tdesc, CtrlLayout::kLocalLock, rdma::AmoOp::read,
                      0) &
                kWriterBit) != 0) {
          backoff.pause();
          s.fabric->check_abort();
          if (fault_on && ++probe % kOwnerProbePeriod == 0) {
            try_revoke_dead_owner(target);
          }
        }
      }
    } else {
      Backoff backoff;
      int probe = 0;
      while (true) {
        count(Op::protocol_branch);
        bool registered_now = false;
        if (rs.excl_held == 0 && !registered) {
          // Invariant (1): register in the global writer half; back off if
          // any lock_all holder exists.
          const std::uint64_t old =
              n.amo(kMaster, mdesc, CtrlLayout::kGlobalLock,
                    rdma::AmoOp::fetch_add, kGlobalExclUnit);
          if ((old & kGlobalShrdMask) != 0) {
            n.amo(kMaster, mdesc, CtrlLayout::kGlobalLock,
                  rdma::AmoOp::fetch_add, ~kGlobalExclUnit + 1);  // -unit
            backoff.pause();
            s.fabric->check_abort();
            continue;
          }
          registered_now = true;
          registered = true;
        }
        // Invariant (2): the local lock must be completely free.
        const std::uint64_t old = n.amo(target, tdesc, CtrlLayout::kLocalLock,
                                        rdma::AmoOp::cas, kWriterBit, 0);
        if (old == 0) break;
        if (registered_now) {
          // Release the global registration while waiting, so lock_all
          // requests are not starved (the paper's two-step retry).
          n.amo(kMaster, mdesc, CtrlLayout::kGlobalLock, rdma::AmoOp::fetch_add,
                ~kGlobalExclUnit + 1);
          registered = false;
        }
        backoff.pause();
        s.fabric->check_abort();
        if (fault_on && ++probe % kOwnerProbePeriod == 0) {
          try_revoke_dead_owner(target);
        }
      }
      if (fault_on) {
        // Record ownership so survivors can revoke if this rank dies while
        // holding the lock.
        n.amo(target, tdesc, CtrlLayout::kLockOwner, rdma::AmoOp::swap,
              static_cast<std::uint64_t>(rank_) + 1);
      }
      ++rs.excl_held;
    }
  } catch (const RankKilledError&) {
    throw;
  } catch (const Error& e) {
    if (!is_fault_class(e.err_class())) throw;
    if (registered && rs.excl_held == 0) {
      // Best effort: drop the partial global registration so lock_all
      // callers are not wedged by this failed acquire.
      try {
        n.amo(kMaster, mdesc, CtrlLayout::kGlobalLock, rdma::AmoOp::fetch_add,
              ~kGlobalExclUnit + 1);
      } catch (const Error&) {
      }
    }
    return status_of(e.err_class());
  }
  rs.locks.emplace(target, type);
  return rdma::OpStatus::ok;
}

void Win::lock(LockType type, int target) {
  handle_failure(lock_impl(type, target), "lock");
}

rdma::OpStatus Win::lock_checked(LockType type, int target) {
  return lock_impl(type, target);
}

rdma::OpStatus Win::unlock_impl(int target) {
  Shared& s = sh();
  RankState& rs = st();
  const auto it = rs.locks.find(target);
  FOMPI_REQUIRE(it != rs.locks.end(), ErrClass::rma_sync,
                "unlock: target not locked");
  const trace::Span tsp(trace::EvClass::unlock, target);
  rdma::Nic& n = nic();
  rdma::Domain& d = s.fabric->domain();
  const bool fault_on = d.config().fault.enabled();
  const auto& tdesc = s.ctrl_desc[static_cast<std::size_t>(target)];
  // The epoch's operations must be remotely complete before the lock is
  // observable as released; failed ones surface in the aggregate status but
  // do not keep the lock held (graceful degradation).
  rdma::OpStatus status = commit_all_checked();
  const bool target_dead =
      fault_on && d.death_epoch() != 0 && !d.alive(target);
  auto guarded_amo = [&](int r, const rdma::RegionDesc& desc, std::size_t off,
                         rdma::AmoOp op, std::uint64_t operand) {
    try {
      n.amo(r, desc, off, op, operand);
    } catch (const RankKilledError&) {
      throw;
    } catch (const Error& e) {
      if (!is_fault_class(e.err_class())) throw;
      if (status == rdma::OpStatus::ok) status = status_of(e.err_class());
    }
  };
  if (it->second == LockType::shared) {
    if (!target_dead) {
      guarded_amo(target, tdesc, CtrlLayout::kLocalLock,
                  rdma::AmoOp::fetch_add, ~std::uint64_t{0});  // -1
    }
  } else {
    if (!target_dead) {
      if (fault_on) {
        guarded_amo(target, tdesc, CtrlLayout::kLockOwner, rdma::AmoOp::swap,
                    0);
      }
      guarded_amo(target, tdesc, CtrlLayout::kLocalLock,
                  rdma::AmoOp::fetch_add, ~kWriterBit + 1);  // clear writer
    }
    --rs.excl_held;
    if (rs.excl_held == 0) {
      guarded_amo(kMaster, s.ctrl_desc[kMaster], CtrlLayout::kGlobalLock,
                  rdma::AmoOp::fetch_add, ~kGlobalExclUnit + 1);
    }
  }
  rs.locks.erase(it);
  if (target_dead && status == rdma::OpStatus::ok) {
    status = rdma::OpStatus::peer_dead;
  }
  return status;
}

void Win::unlock(int target) { handle_failure(unlock_impl(target), "unlock"); }

rdma::OpStatus Win::unlock_checked(int target) { return unlock_impl(target); }

void Win::lock_all() {
  Shared& s = sh();
  RankState& rs = st();
  FOMPI_REQUIRE(!rs.lock_all, ErrClass::rma_sync, "lock_all already held");
  FOMPI_REQUIRE(rs.locks.empty(), ErrClass::rma_sync,
                "lock_all while holding per-target locks");
  rs.fence_active = false;  // a preceding fence acts as the closing fence
  const trace::Span tsp(trace::EvClass::lock);
  rdma::Nic& n = nic();
  const auto& mdesc = s.ctrl_desc[kMaster];
  Backoff backoff;
  while (true) {
    const std::uint64_t old = n.amo(kMaster, mdesc, CtrlLayout::kGlobalLock,
                                    rdma::AmoOp::fetch_add, 1);
    if ((old >> 32) == 0) break;  // no exclusive holder registered
    n.amo(kMaster, mdesc, CtrlLayout::kGlobalLock, rdma::AmoOp::fetch_add,
          ~std::uint64_t{0});
    backoff.pause();
    s.fabric->check_abort();
  }
  rs.lock_all = true;
}

void Win::unlock_all() {
  Shared& s = sh();
  RankState& rs = st();
  FOMPI_REQUIRE(rs.lock_all, ErrClass::rma_sync,
                "unlock_all without lock_all");
  const trace::Span tsp(trace::EvClass::unlock);
  commit_all();
  nic().amo(kMaster, s.ctrl_desc[kMaster], CtrlLayout::kGlobalLock,
            rdma::AmoOp::fetch_add, ~std::uint64_t{0});
  rs.lock_all = false;
}

// ---------------------------------------------------------------------------
// Flush family (Sec 2.3, "Flush"): remote bulk completion + memory fence.
// All four calls share one implementation, as in foMPI.
// ---------------------------------------------------------------------------

namespace {
void require_passive(const char* what, bool lock_all, bool any_lock) {
  FOMPI_REQUIRE(lock_all || any_lock, ErrClass::rma_sync,
                std::string(what) + " requires a passive-target epoch");
}
}  // namespace

void Win::flush(int target) {
  RankState& rs = st();
  require_passive("flush", rs.lock_all, rs.locks.count(target) != 0);
  const trace::Span tsp(trace::EvClass::flush, target);
  commit_all();
}

rdma::OpStatus Win::flush_checked(int target) {
  RankState& rs = st();
  require_passive("flush", rs.lock_all, rs.locks.count(target) != 0);
  const trace::Span tsp(trace::EvClass::flush, target);
  return commit_all_checked();
}

void Win::flush_local(int target) {
  RankState& rs = st();
  require_passive("flush_local", rs.lock_all, rs.locks.count(target) != 0);
  const trace::Span tsp(trace::EvClass::flush, target);
  commit_all();
}

void Win::flush_all() {
  RankState& rs = st();
  require_passive("flush_all", rs.lock_all, !rs.locks.empty());
  const trace::Span tsp(trace::EvClass::flush);
  commit_all();
}

rdma::OpStatus Win::flush_all_checked() {
  RankState& rs = st();
  require_passive("flush_all", rs.lock_all, !rs.locks.empty());
  const trace::Span tsp(trace::EvClass::flush);
  return commit_all_checked();
}

void Win::flush_local_all() {
  RankState& rs = st();
  require_passive("flush_local_all", rs.lock_all, !rs.locks.empty());
  const trace::Span tsp(trace::EvClass::flush);
  commit_all();
}

}  // namespace fompi::core

// MCS queue lock over window memory (Sec 2.3: "The number of remote
// requests while waiting can be bound by using MCS locks [24]").
//
// The two-level lock protocol retries remotely under contention; an MCS
// lock bounds remote traffic to O(1) per acquisition: a contender enqueues
// itself with one remote SWAP on the tail word, links behind its
// predecessor with one remote put, and then spins on its *own* flag word —
// which lives in its own window segment, so the wait is purely local.
// bench_ablation_locks compares the two under contention.
//
// Memory layout inside an allocated window (per rank, 8-byte words):
//   word 0 at the master rank : tail (0 = free, r+1 = rank r is last)
//   word 1 (every rank)       : next (0 = none, r+1 = successor rank)
//   word 2 (every rank)       : locked flag (1 = wait, 0 = go)
#pragma once

#include "core/window.hpp"

namespace fompi::core {

class McsLock {
 public:
  /// The window must be an allocated window with >= 24 bytes per rank at
  /// byte displacement `disp`; all participating ranks must construct the
  /// lock with the same master and displacement, and access it inside a
  /// lock_all (or equivalent passive) epoch.
  McsLock(Win& win, int master, std::size_t disp = 0)
      : win_(win), master_(master), disp_(disp) {}

  /// Number of remote operations issued by the last acquire() (for the
  /// ablation bench: bounded for MCS, unbounded for the two-level lock).
  int last_acquire_remote_ops() const noexcept { return last_ops_; }

  void acquire();
  void release();

 private:
  static constexpr std::size_t kTail = 0;
  static constexpr std::size_t kNext = 8;
  static constexpr std::size_t kLocked = 16;

  Win& win_;
  int master_;
  std::size_t disp_;
  int last_ops_ = 0;
};

}  // namespace fompi::core

// General active target synchronization (PSCW; Sec 2.3 and Fig 2).
//
// The scalable matching protocol: a process posting an exposure epoch
// announces itself by writing its rank into a matching list *local to each
// origin* in the group; the origin's start() spins on its own memory until
// every target of its access group is present. The matching list storage is
// managed remotely and without any receiver involvement: a poster acquires
// a free element with remote CAS operations (the free-storage management of
// Fig 2c — here a CAS scan over the fixed-capacity slot array, starting at
// a hashed position). wait() blocks on a completion counter that each
// complete() increments remotely after committing its epoch's operations.
//
// post/complete issue O(k) messages for k neighbors; start/wait issue none.
#include "core/window.hpp"

#include "common/backoff.hpp"
#include "common/instr.hpp"
#include "core/win_internal.hpp"
#include "trace/trace.hpp"

namespace fompi::core {

namespace {
/// Encoded slot value for a poster: rank + 1 (0 means "free").
std::uint64_t slot_value(int rank) {
  return static_cast<std::uint64_t>(rank) + 1;
}
}  // namespace

void Win::post(const fabric::Group& group) {
  Shared& s = sh();
  RankState& rs = st();
  FOMPI_REQUIRE(!rs.exposure_group, ErrClass::rma_sync,
                "post: exposure epoch already open");
  rs.fence_active = false;  // a preceding fence acts as the closing fence
  const trace::Span tsp(trace::EvClass::pscw_post, -1,
                        static_cast<std::uint64_t>(group.size()));
  const CtrlLayout& L = s.layout;
  rdma::Nic& n = nic();
  // Make prior local stores to the exposed memory visible before any
  // origin can observe the post.
  n.local_fence();
  for (int origin : group) {
    FOMPI_REQUIRE(origin >= 0 && origin < s.nranks, ErrClass::rank,
                  "post: origin out of range");
    // Free-storage management: acquire a free matching-list element at the
    // origin via remote CAS, starting at a position hashed by our rank to
    // spread concurrent posters.
    const int cap = L.max_neighbors;
    Backoff backoff;
    bool placed = false;
    for (int sweep = 0; !placed; ++sweep) {
      FOMPI_REQUIRE(sweep < 64, ErrClass::rma_sync,
                    "post: matching list full (raise WinConfig::max_neighbors)");
      for (int i = 0; i < cap; ++i) {
        const int slot = (rank_ + i) % cap;
        const std::uint64_t old =
            n.amo(origin, s.ctrl_desc[static_cast<std::size_t>(origin)],
                  L.slot_off(slot), rdma::AmoOp::cas, slot_value(rank_),
                  /*compare=*/0);
        count(Op::protocol_branch);
        if (old == 0) {
          placed = true;
          break;
        }
      }
      if (!placed) backoff.pause();
    }
  }
  rs.exposure_group = group;
}

void Win::start(const fabric::Group& group) {
  Shared& s = sh();
  RankState& rs = st();
  FOMPI_REQUIRE(!rs.access_group, ErrClass::rma_sync,
                "start: access epoch already open");
  rs.fence_active = false;  // a preceding fence acts as the closing fence
  const trace::Span tsp(trace::EvClass::pscw_start, -1,
                        static_cast<std::uint64_t>(group.size()));
  const CtrlLayout& L = s.layout;
  rdma::Domain& d = s.fabric->domain();
  // Wait (purely locally) until every target of the access group has
  // announced its matching post, consuming one announcement each.
  for (int target : group) {
    FOMPI_REQUIRE(target >= 0 && target < s.nranks, ErrClass::rank,
                  "start: target out of range");
    const std::uint64_t want = slot_value(target);
    Backoff backoff;
    bool found = false;
    bool saw_dead = false;  // one full re-scan after observing the death
    while (!found) {
      for (int slot = 0; slot < L.max_neighbors; ++slot) {
        auto word = s.ctrl_word(rank_, L.slot_off(slot));
        if (word.load(std::memory_order_acquire) != want) continue;
        // Consume: only the local rank removes entries, so a plain
        // exchange is race-free against remote CAS(0 -> v) insertions.
        if (word.exchange(0, std::memory_order_acq_rel) == want) {
          found = true;
          break;
        }
      }
      if (!found) {
        // A target the fault plan killed will never post; raise instead of
        // spinning forever (a typed error in either ErrMode: there is no
        // epoch to tear down yet). The target may have posted and THEN died
        // inside our scan window — its announcement CAS precedes the death
        // mark, so one more scan after observing the death settles it.
        if (saw_dead) {
          raise(ErrClass::peer_dead, "start: target rank died before posting");
        }
        if (d.death_epoch() != 0 && !d.alive(target)) {
          saw_dead = true;
          continue;
        }
        s.fabric->yield_check();
        backoff.pause();
      }
    }
  }
  rs.access_group = group;
}

rdma::OpStatus Win::complete_impl() {
  Shared& s = sh();
  RankState& rs = st();
  FOMPI_REQUIRE(rs.access_group.has_value(), ErrClass::rma_sync,
                "complete without a matching start");
  const trace::Span tsp(trace::EvClass::pscw_complete, -1,
                        static_cast<std::uint64_t>(rs.access_group->size()));
  rdma::Domain& d = s.fabric->domain();
  // Guarantee remote visibility of every RMA operation of this epoch, then
  // bump each exposure side's completion counter. Failed operations surface
  // in the aggregate status, but the epoch is closed either way.
  rdma::OpStatus status = commit_all_checked();
  rdma::Nic& n = nic();
  for (int target : *rs.access_group) {
    if (d.death_epoch() != 0 && !d.alive(target)) {
      if (status == rdma::OpStatus::ok) status = rdma::OpStatus::peer_dead;
      continue;  // a dead exposure side will never wait on the counter
    }
    try {
      n.amo(target, s.ctrl_desc[static_cast<std::size_t>(target)],
            CtrlLayout::kCompletion, rdma::AmoOp::fetch_add, 1);
    } catch (const RankKilledError&) {
      throw;
    } catch (const Error& e) {
      if (e.err_class() != ErrClass::timeout && e.err_class() != ErrClass::cq &&
          e.err_class() != ErrClass::peer_dead) {
        throw;
      }
      if (status == rdma::OpStatus::ok) {
        status = e.err_class() == ErrClass::timeout ? rdma::OpStatus::timeout
                 : e.err_class() == ErrClass::cq    ? rdma::OpStatus::cq_error
                                                    : rdma::OpStatus::peer_dead;
      }
    }
  }
  rs.access_group.reset();
  return status;
}

void Win::complete() { handle_failure(complete_impl(), "complete"); }

rdma::OpStatus Win::complete_checked() { return complete_impl(); }

rdma::OpStatus Win::wait_impl() {
  Shared& s = sh();
  RankState& rs = st();
  FOMPI_REQUIRE(rs.exposure_group.has_value(), ErrClass::rma_sync,
                "wait without a matching post");
  const trace::Span tsp(trace::EvClass::pscw_wait, -1,
                        static_cast<std::uint64_t>(rs.exposure_group->size()));
  rdma::Domain& d = s.fabric->domain();
  const auto expected =
      static_cast<std::uint64_t>(rs.exposure_group->size());
  auto counter = s.ctrl_word(rank_, CtrlLayout::kCompletion);
  Backoff backoff;
  while (counter.load(std::memory_order_acquire) < expected) {
    // An access-group member the fault plan killed may never call
    // complete(): abandon the epoch (drain whatever completions arrived so
    // the counter is clean for the next epoch) and report peer_dead. The
    // counter is re-checked after observing the death — an origin may have
    // bumped it and died afterwards (its AMO precedes the death mark), in
    // which case the epoch finished and the normal path below applies.
    if (d.death_epoch() != 0) {
      bool origin_dead = false;
      for (int origin : *rs.exposure_group) {
        if (!d.alive(origin)) {
          origin_dead = true;
          break;
        }
      }
      if (origin_dead &&
          counter.load(std::memory_order_acquire) < expected) {
        counter.exchange(0, std::memory_order_acq_rel);
        nic().local_fence();
        rs.exposure_group.reset();
        return rdma::OpStatus::peer_dead;
      }
    }
    s.fabric->yield_check();
    backoff.pause();
  }
  counter.fetch_sub(expected, std::memory_order_acq_rel);
  // The origins' puts are already globally visible (they committed before
  // incrementing the counter); a local fence orders our subsequent reads.
  nic().local_fence();
  rs.exposure_group.reset();
  return rdma::OpStatus::ok;
}

void Win::wait() { handle_failure(wait_impl(), "wait"); }

rdma::OpStatus Win::wait_checked() { return wait_impl(); }

bool Win::test() {
  Shared& s = sh();
  RankState& rs = st();
  FOMPI_REQUIRE(rs.exposure_group.has_value(), ErrClass::rma_sync,
                "test without a matching post");
  const auto expected =
      static_cast<std::uint64_t>(rs.exposure_group->size());
  auto counter = s.ctrl_word(rank_, CtrlLayout::kCompletion);
  if (counter.load(std::memory_order_acquire) < expected) return false;
  counter.fetch_sub(expected, std::memory_order_acq_rel);
  nic().local_fence();
  rs.exposure_group.reset();
  return true;
}

}  // namespace fompi::core

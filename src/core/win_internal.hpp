// Internal window state shared by the core implementation files.
// Not part of the public API.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>

#include "common/buffer.hpp"
#include "core/window.hpp"
#include "rdma/nic.hpp"

namespace fompi::core {

enum class WinKind : std::uint8_t { created, allocated, dynamic, shared_mem };

/// Byte offsets of the protocol words in each rank's window control block.
/// Every word is 8 bytes and accessed exclusively through atomics/AMOs.
struct CtrlLayout {
  static constexpr std::size_t kCompletion = 0;  ///< PSCW completion counter
  static constexpr std::size_t kLocalLock = 8;   ///< reader-writer lock word
  static constexpr std::size_t kGlobalLock = 16; ///< global lock (master only)
  static constexpr std::size_t kAccLock = 24;    ///< accumulate fallback lock
  static constexpr std::size_t kDynId = 32;      ///< dynamic attach epoch id
  static constexpr std::size_t kDynInval = 40;   ///< cache invalidation flag
  /// Exclusive-lock owner word: rank+1 of the current exclusive holder of
  /// this rank's local lock, 0 when unowned. Maintained only when the fault
  /// plan is armed (keeps the fault-free AMO counts exact); consulted by
  /// spinners to revoke locks held by a rank the fault plan killed.
  static constexpr std::size_t kLockOwner = 48;
  static constexpr std::size_t kSlots = 56;      ///< PSCW matching list

  explicit CtrlLayout(const WinConfig& cfg)
      : max_neighbors(cfg.max_neighbors),
        max_dyn(cfg.max_dyn_regions),
        max_cachers(cfg.max_cachers) {}

  int max_neighbors;
  int max_dyn;
  int max_cachers;

  /// Dynamic directory entry: {addr, size, rkey, seq} as four u64 words.
  static constexpr std::size_t kDynEntryBytes = 32;

  std::size_t slot_off(int i) const {
    return kSlots + 8 * static_cast<std::size_t>(i);
  }
  std::size_t dyndir_off(int i = 0) const {
    return kSlots + 8 * static_cast<std::size_t>(max_neighbors) +
           kDynEntryBytes * static_cast<std::size_t>(i);
  }
  std::size_t cachers_off(int i = 0) const {
    return dyndir_off(max_dyn) + 8 * static_cast<std::size_t>(i);
  }
  std::size_t total_bytes() const { return cachers_off(max_cachers); }
};

/// The local-lock word: MSB = writer bit, low bits = reader count (Fig 3a).
inline constexpr std::uint64_t kWriterBit = 1ull << 63;
/// The global-lock word: high 32 bits count processes holding exclusive
/// locks, low 32 bits count lock_all (global shared) holders (Fig 3a).
inline constexpr std::uint64_t kGlobalExclUnit = 1ull << 32;
inline constexpr std::uint64_t kGlobalShrdMask = 0xffffffffull;

struct Win::Shared {
  WinKind kind = WinKind::created;
  WinConfig cfg{};
  CtrlLayout layout{cfg};
  fabric::Fabric* fabric = nullptr;
  int nranks = 0;

  // Per-rank control blocks (protocol words), registered for AMOs.
  std::vector<AlignedBuffer> ctrl_mem;
  std::vector<rdma::RegionDesc> ctrl_desc;

  // Static windows (created / shared): Ω(p) descriptor table.
  std::vector<rdma::RegionDesc> data_desc;
  std::vector<std::byte*> bases;
  std::vector<std::size_t> sizes;

  // Allocated windows: O(1) metadata — heap handle plus one offset.
  std::shared_ptr<SymHeap> heap;
  std::size_t heap_off = 0;
  std::size_t alloc_bytes = 0;
  int alloc_attempts = 0;

  bool freed = false;

  // Notified access (Win::notify_enable): one plane shared by every rank
  // handle of this window. notify_mu guards lazy construction only — never
  // hold it across a barrier (CLAUDE.md).
  std::mutex notify_mu;
  std::shared_ptr<fabric::progress::NotifyPlane> notify;

  std::atomic_ref<std::uint64_t> ctrl_word(int rank, std::size_t off) {
    auto* p = reinterpret_cast<std::uint64_t*>(
        ctrl_mem[static_cast<std::size_t>(rank)].data() + off);
    return std::atomic_ref<std::uint64_t>(*p);
  }
};

struct Win::RankState {
  // --- epoch bookkeeping --------------------------------------------------
  bool fence_active = false;
  bool lock_all = false;
  std::map<int, LockType> locks;  // held passive-target locks
  int excl_held = 0;              // exclusive locks currently held
  std::optional<fabric::Group> access_group;
  std::optional<fabric::Group> exposure_group;
  /// Last fault status recorded by a plain sync call under errors_return.
  rdma::OpStatus last_error = rdma::OpStatus::ok;

  // --- dynamic-window descriptor cache (per target) -------------------------
  struct DynEntry {
    std::uint64_t addr = 0;
    std::uint64_t size = 0;
    std::uint64_t rkey = 0;
  };
  struct DynCache {
    std::uint64_t id = ~std::uint64_t{0};
    std::vector<DynEntry> entries;
    bool registered = false;  // cacher-list registration (DynMode::notify)
  };
  std::vector<DynCache> dyn_cache;

  // Regions this rank attached: base -> (rkey, slot index).
  struct Attached {
    std::uint64_t rkey;
    int slot;
    std::size_t size;
  };
  std::map<const void*, Attached> attached;

  // --- datatype-path scratch (recycled across calls) ------------------------
  // Per-rank state needs no locking; capacity growth counts Op::pool_grow so
  // steady-state issue loops can assert they allocate nothing.
  std::vector<rdma::Frag> frag_scratch;  ///< fragment vector for *_nbv
  std::vector<std::byte> dt_staging;          ///< pack/unpack staging buffer
  std::vector<std::byte> acc_tmp;             ///< accumulate combine buffer
};

}  // namespace fompi::core

#include "core/ops.hpp"

#include <type_traits>

namespace fompi {

const char* to_string(Elem e) noexcept {
  switch (e) {
    case Elem::i32: return "i32";
    case Elem::i64: return "i64";
    case Elem::u64: return "u64";
    case Elem::f32: return "f32";
    case Elem::f64: return "f64";
  }
  return "unknown";
}

const char* to_string(RedOp op) noexcept {
  switch (op) {
    case RedOp::sum:     return "sum";
    case RedOp::prod:    return "prod";
    case RedOp::min:     return "min";
    case RedOp::max:     return "max";
    case RedOp::band:    return "band";
    case RedOp::bor:     return "bor";
    case RedOp::bxor:    return "bxor";
    case RedOp::replace: return "replace";
    case RedOp::no_op:   return "no_op";
  }
  return "unknown";
}

namespace {

template <class T>
void combine_span(RedOp op, void* target, const void* origin, std::size_t n) {
  auto* t = static_cast<T*>(target);
  const auto* o = static_cast<const T*>(origin);
  for (std::size_t i = 0; i < n; ++i) {
    t[i] = detail::combine_typed<T>(op, t[i], o[i]);
  }
}

}  // namespace

void combine(Elem e, RedOp op, void* target, const void* origin,
             std::size_t n) {
  switch (e) {
    case Elem::i32: combine_span<std::int32_t>(op, target, origin, n); return;
    case Elem::i64: combine_span<std::int64_t>(op, target, origin, n); return;
    case Elem::u64: combine_span<std::uint64_t>(op, target, origin, n); return;
    case Elem::f32: combine_span<float>(op, target, origin, n); return;
    case Elem::f64: combine_span<double>(op, target, origin, n); return;
  }
  raise(ErrClass::type, "bad element type");
}

}  // namespace fompi

// Fence synchronization (Sec 2.3, "Fence") and MPI_Win_sync.
//
// MPI_Win_fence closes the previous access+exposure epoch and opens the
// next one for the whole window. The implementation is exactly the paper's:
// commit all outstanding operations (mfence + DMAPP gsync equivalent),
// then a barrier for global completion. O(1) memory, O(log p) time.
#include "core/window.hpp"

#include "core/win_internal.hpp"
#include "trace/trace.hpp"

namespace fompi::core {

void Win::fence() {
  Shared& s = sh();
  RankState& rs = st();
  FOMPI_REQUIRE(!rs.lock_all && rs.locks.empty(), ErrClass::rma_sync,
                "fence inside a passive-target epoch");
  FOMPI_REQUIRE(!rs.access_group && !rs.exposure_group, ErrClass::rma_sync,
                "fence inside a PSCW epoch");
  const trace::Span sp(trace::EvClass::fence);
  commit_all();                    // local mfence + bulk remote completion
  s.fabric->coll().barrier(rank_); // global completion
  rs.fence_active = true;
}

void Win::sync() {
  sh();
  trace::emit(trace::EvClass::win_sync, trace::EvPhase::issue);
  nic().local_fence();
}

}  // namespace fompi::core

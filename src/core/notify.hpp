// Notified access extension (the paper's outlook: "scalable synchronization
// algorithms developed in this work will act as a blue print for optimized
// MPI-3.0 RMA implementations"; foMPI later grew exactly this interface —
// put-with-notification, Belli & Hoefler, IPDPS'15).
//
// A notified put transfers data and atomically increments a notification
// counter at the target once the data is remotely complete; the target
// waits on counters instead of heavyweight epochs. This turns the paper's
// MILC communication scheme (put + separate flag AMO + flush) into a
// single call and halves its critical path.
//
// Notifications are matched by a small id space per window; each (window,
// id) pair is an independent counter. Waiting is purely local.
#pragma once

#include "core/window.hpp"

namespace fompi::core {

class NotifyWin {
 public:
  /// Collective. Wraps an allocated window of `bytes` per rank plus
  /// `num_ids` notification counters. The window is held in a lock_all
  /// epoch for its lifetime (passive target, as the extension prescribes).
  NotifyWin(fabric::RankCtx& ctx, std::size_t bytes, int num_ids,
            WinConfig cfg = {});
  /// Collective.
  void destroy(fabric::RankCtx& ctx);

  void* base();
  std::size_t size() const { return bytes_; }
  int num_ids() const { return num_ids_; }

  /// Puts `len` bytes at (target, tdisp), guarantees remote completion,
  /// then increments notification `id` at the target. The call returns
  /// after the notification is committed (flush + AMO).
  void put_notify(const void* src, std::size_t len, int target,
                  std::size_t tdisp, int id);

  /// Pipelined variant: issues the put nonblocking and records the
  /// notification; commit_notifications() completes all payloads with one
  /// flush, then delivers all pending notifications with a second flush —
  /// two bulk completions for any number of neighbors instead of two per
  /// call.
  void put_notify_async(const void* src, std::size_t len, int target,
                        std::size_t tdisp, int id);
  void commit_notifications();

  /// Number of outstanding notifications for `id` (local, nonblocking).
  std::uint64_t test_notify(int id);
  /// Blocks until at least `count` notifications arrived on `id`, then
  /// consumes them. Includes the memory fence that makes the notified
  /// data readable.
  void wait_notify(int id, std::uint64_t count = 1);

 private:
  std::size_t notify_off(int id) const {
    return bytes_ + 8 * static_cast<std::size_t>(id);
  }

  std::size_t bytes_ = 0;
  int num_ids_ = 0;
  Win win_;
  std::vector<std::pair<int, int>> pending_;  // (target, id)
};

}  // namespace fompi::core

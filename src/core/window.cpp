// Window creation, destruction and shared plumbing (Sec 2.2).
#include "core/window.hpp"

#include <functional>

#include "common/instr.hpp"
#include "core/win_internal.hpp"

namespace fompi::core {

Win::Win(std::shared_ptr<Shared> shared, int rank)
    : shared_(std::move(shared)), rank_(rank),
      state_(std::make_unique<RankState>()) {
  state_->dyn_cache.resize(static_cast<std::size_t>(shared_->nranks));
}

Win::Win() noexcept = default;
Win::Win(Win&&) noexcept = default;
Win& Win::operator=(Win&&) noexcept = default;
Win::~Win() = default;

Win::Shared& Win::sh() const {
  FOMPI_REQUIRE(shared_ != nullptr, ErrClass::win, "use of an empty window");
  FOMPI_REQUIRE(!shared_->freed, ErrClass::win, "use of a freed window");
  return *shared_;
}

Win::RankState& Win::st() const { return *state_; }

rdma::Nic& Win::nic() const { return sh().fabric->domain().nic(rank_); }

int Win::rank() const {
  FOMPI_REQUIRE(shared_ != nullptr, ErrClass::win, "use of an empty window");
  return rank_;
}

int Win::nranks() const { return sh().nranks; }

void* Win::base() const {
  Shared& s = sh();
  if (s.kind == WinKind::dynamic) return nullptr;
  return s.bases[static_cast<std::size_t>(rank_)];
}

std::size_t Win::size(int target) const {
  Shared& s = sh();
  FOMPI_REQUIRE(target >= 0 && target < s.nranks, ErrClass::rank,
                "size: target out of range");
  if (s.kind == WinKind::dynamic) return 0;
  return s.sizes[static_cast<std::size_t>(target)];
}

void* Win::shared_query(int target) const {
  Shared& s = sh();
  FOMPI_REQUIRE(s.kind == WinKind::shared_mem, ErrClass::win,
                "shared_query requires an allocate_shared window");
  FOMPI_REQUIRE(target >= 0 && target < s.nranks, ErrClass::rank,
                "shared_query: target out of range");
  FOMPI_REQUIRE(s.fabric->domain().same_node(rank_, target), ErrClass::win,
                "shared_query: target is not on this node");
  return s.bases[static_cast<std::size_t>(target)];
}

int Win::alloc_attempts() const { return sh().alloc_attempts; }

void Win::yield_check() const { sh().fabric->yield_check(); }

// ---------------------------------------------------------------------------
// Collective creation
// ---------------------------------------------------------------------------

Win Win::make_collective(
    fabric::RankCtx& ctx, WinConfig cfg,
    const std::function<void(Shared&)>& init_leader,
    const std::function<void(Shared&, int)>& init_rank) {
  auto& coll = ctx.fabric().coll();
  const int me = ctx.rank();
  std::shared_ptr<Shared> shared;
  if (me == 0) {
    shared = std::make_shared<Shared>();
    shared->cfg = cfg;
    shared->layout = CtrlLayout(cfg);
    shared->fabric = &ctx.fabric();
    shared->nranks = ctx.nranks();
    const int p = ctx.nranks();
    shared->ctrl_mem.reserve(static_cast<std::size_t>(p));
    shared->ctrl_desc.reserve(static_cast<std::size_t>(p));
    for (int r = 0; r < p; ++r) {
      shared->ctrl_mem.emplace_back(shared->layout.total_bytes());
      shared->ctrl_desc.push_back(
          ctx.fabric().domain().registry().register_region(
              r, shared->ctrl_mem.back().data(),
              shared->ctrl_mem.back().size()));
    }
    shared->data_desc.resize(static_cast<std::size_t>(p));
    shared->bases.resize(static_cast<std::size_t>(p), nullptr);
    shared->sizes.resize(static_cast<std::size_t>(p), 0);
    if (init_leader) init_leader(*shared);
    coll.publish(0, &shared);
  }
  coll.barrier(me);
  if (me != 0) {
    shared = *static_cast<const std::shared_ptr<Shared>*>(coll.peer_ptr(0));
  }
  coll.barrier(me);
  if (init_rank) init_rank(*shared, me);
  coll.barrier(me);
  return Win(std::move(shared), me);
}

Win Win::create(fabric::RankCtx& ctx, void* base, std::size_t bytes,
                WinConfig cfg) {
  FOMPI_REQUIRE(base != nullptr || bytes == 0, ErrClass::arg,
                "create: null base with nonzero size");
  auto& registry = ctx.fabric().domain().registry();
  Win w = make_collective(
      ctx, cfg, /*init_leader=*/[](Shared& s) { s.kind = WinKind::created; },
      /*init_rank=*/
      [&, base, bytes](Shared& s, int me) {
        // Each rank exposes its own user memory: the per-rank descriptor
        // lands in the Ω(p) table (the paper's scalability caveat for
        // traditional windows).
        const auto idx = static_cast<std::size_t>(me);
        s.bases[idx] = static_cast<std::byte*>(base);
        s.sizes[idx] = bytes;
        if (bytes > 0) {
          s.data_desc[idx] = registry.register_region(me, base, bytes);
        }
      });
  return w;
}

Win Win::allocate(fabric::RankCtx& ctx, std::size_t bytes, WinConfig cfg) {
  // The symmetric heap is a per-fabric singleton, constructed on first use.
  auto& fabric = ctx.fabric();
  std::shared_ptr<SymHeap> heap;
  if (ctx.rank() == 0) {
    auto existing = fabric.ext_get("core.symheap");
    if (existing == nullptr) {
      auto fresh =
          std::make_shared<SymHeap>(fabric.domain(), cfg.symheap_bytes);
      existing = fabric.ext_put_once("core.symheap", fresh);
    }
    heap = std::static_pointer_cast<SymHeap>(existing);
  }
  ctx.barrier();
  if (ctx.rank() != 0) {
    heap = std::static_pointer_cast<SymHeap>(fabric.ext_get("core.symheap"));
  }

  int attempts = 0;
  const std::size_t offset = heap->allocate(ctx, bytes, &attempts);

  Win w = make_collective(
      ctx, cfg,
      /*init_leader=*/
      [&, offset, bytes, attempts](Shared& s) {
        s.kind = WinKind::allocated;
        s.heap = heap;
        s.heap_off = offset;
        s.alloc_bytes = bytes;
        s.alloc_attempts = attempts;
      },
      /*init_rank=*/
      [&, offset, bytes](Shared& s, int me) {
        const auto idx = static_cast<std::size_t>(me);
        s.bases[idx] = s.heap->rank_ptr(me, offset);
        s.sizes[idx] = bytes;
      });
  return w;
}

Win Win::allocate_shared(fabric::RankCtx& ctx, std::size_t bytes,
                         WinConfig cfg) {
  Win w = allocate(ctx, bytes, cfg);
  w.shared_->kind = WinKind::shared_mem;  // same layout, plus shared_query
  ctx.barrier();
  return w;
}

Win Win::create_dynamic(fabric::RankCtx& ctx, WinConfig cfg) {
  return make_collective(
      ctx, cfg,
      /*init_leader=*/[](Shared& s) { s.kind = WinKind::dynamic; },
      /*init_rank=*/nullptr);
}

void Win::free() {
  Shared& s = sh();
  auto& registry = s.fabric->domain().registry();
  auto& coll = s.fabric->coll();
  // No rank may still be in an epoch.
  // A trailing fence epoch counts as closed; passive/PSCW epochs must end.
  FOMPI_REQUIRE(!st().lock_all && st().locks.empty() && !st().access_group &&
                    !st().exposure_group,
                ErrClass::rma_sync, "free: window still inside an epoch");
  coll.barrier(rank_);
  // Per-rank cleanup.
  if (s.kind == WinKind::created &&
      s.sizes[static_cast<std::size_t>(rank_)] > 0) {
    registry.deregister(s.data_desc[static_cast<std::size_t>(rank_)].rkey);
  }
  if (s.kind == WinKind::dynamic) {
    for (auto& [base, att] : st().attached) registry.deregister(att.rkey);
    st().attached.clear();
  }
  coll.barrier(rank_);
  if (s.kind == WinKind::allocated || s.kind == WinKind::shared_mem) {
    fabric::RankCtx ctx(*s.fabric, rank_);
    s.heap->deallocate(ctx, s.heap_off);
  }
  // Leader releases the control blocks after everyone passed the barrier.
  if (rank_ == 0) {
    for (auto& d : s.ctrl_desc) registry.deregister(d.rkey);
    s.ctrl_desc.clear();
    s.notify.reset();  // notify rings deregister while the registry is live
    s.freed = true;
  }
  coll.barrier(rank_);
  shared_.reset();
}

// ---------------------------------------------------------------------------
// Access checks and target resolution
// ---------------------------------------------------------------------------

void Win::require_access(int target) const {
  Shared& s = sh();
  FOMPI_REQUIRE(target >= 0 && target < s.nranks, ErrClass::rank,
                "communication target out of range");
  count(Op::validation_check);
  RankState& rs = st();
  if (rs.fence_active || rs.lock_all) return;
  if (rs.locks.count(target) != 0) return;
  if (rs.access_group && rs.access_group->contains(target)) return;
  raise(ErrClass::rma_sync,
        "communication outside any access epoch for this target");
}

void Win::commit_all() {
  handle_failure(commit_all_checked(), "commit");
}

rdma::OpStatus Win::commit_all_checked() { return nic().gsync_status(); }

void Win::handle_failure(rdma::OpStatus st_, const char* what) {
  if (st_ == rdma::OpStatus::ok) return;
  if (sh().cfg.err_mode == ErrMode::errors_return) {
    st().last_error = st_;
    return;
  }
  const ErrClass cls = st_ == rdma::OpStatus::timeout    ? ErrClass::timeout
                       : st_ == rdma::OpStatus::cq_error ? ErrClass::cq
                       : st_ == rdma::OpStatus::peer_dead ? ErrClass::peer_dead
                                                          : ErrClass::internal;
  raise(cls, std::string(what) + ": operation failed under the fault plan");
}

rdma::OpStatus Win::last_error() const { return st().last_error; }

void Win::clear_last_error() { st().last_error = rdma::OpStatus::ok; }

bool Win::peer_alive(int target) const {
  Shared& s = sh();
  FOMPI_REQUIRE(target >= 0 && target < s.nranks, ErrClass::rank,
                "peer_alive: target out of range");
  return s.fabric->domain().alive(target);
}

}  // namespace fompi::core

#include "core/sym_heap.hpp"

#include "common/instr.hpp"

namespace fompi::core {

namespace {
constexpr std::size_t kAlign = 64;
constexpr int kMaxProposals = 1000;

std::size_t round_up(std::size_t v) { return (v + kAlign - 1) / kAlign * kAlign; }
}  // namespace

SymHeap::SymHeap(rdma::Domain& domain, std::size_t per_rank_bytes)
    : per_rank_(round_up(per_rank_bytes)),
      arena_(per_rank_ * static_cast<std::size_t>(domain.nranks())),
      propose_rng_(domain.config().seed ^ 0x5ee7c0de) {
  descs_.reserve(static_cast<std::size_t>(domain.nranks()));
  for (int r = 0; r < domain.nranks(); ++r) {
    descs_.push_back(domain.registry().register_region(
        r, arena_.data() + static_cast<std::size_t>(r) * per_rank_,
        per_rank_));
  }
}

bool SymHeap::range_free(std::size_t offset, std::size_t bytes) const {
  if (offset + bytes > per_rank_) return false;
  // First allocation at or after `offset` must start at >= offset+bytes,
  // and the previous allocation must end at <= offset.
  auto it = live_.lower_bound(offset);
  if (it != live_.end() && it->first < offset + bytes) return false;
  if (it != live_.begin()) {
    --it;
    if (it->first + it->second > offset) return false;
  }
  return true;
}

std::size_t SymHeap::allocate(fabric::RankCtx& ctx, std::size_t bytes,
                              int* attempts_out) {
  const std::size_t need = round_up(bytes == 0 ? kAlign : bytes);
  int attempts = 0;
  std::size_t winner = 0;
  while (true) {
    ++attempts;
    FOMPI_REQUIRE(attempts <= kMaxProposals, ErrClass::no_mem,
                  "symmetric heap: no common offset found");
    // Leader proposes a random aligned offset (the paper's random mmap
    // address), broadcast to all ranks.
    std::size_t proposal = 0;
    if (ctx.rank() == 0) {
      std::scoped_lock lock(mu_);
      FOMPI_REQUIRE(need <= per_rank_, ErrClass::no_mem,
                    "allocation exceeds symmetric heap capacity");
      const std::size_t slots = (per_rank_ - need) / kAlign + 1;
      proposal = propose_rng_.below(slots) * kAlign;
    }
    ctx.bcast(0, &proposal, 1);
    // Every rank independently "tries the mmap": checks the proposal
    // against its own (identical) occupancy map.
    int ok;
    {
      std::scoped_lock lock(mu_);
      ok = range_free(proposal, need) ? 1 : 0;
    }
    int all_ok = 0;
    ctx.allreduce(&ok, &all_ok, 1, [](int a, int b) { return a & b; });
    if (all_ok == 1) {
      if (ctx.rank() == 0) {
        std::scoped_lock lock(mu_);
        live_.emplace(proposal, need);
      }
      winner = proposal;
      ctx.barrier();  // commit visible before anyone uses the block
      break;
    }
    count(Op::retry);
  }
  if (attempts_out != nullptr) *attempts_out = attempts;
  return winner;
}

void SymHeap::deallocate(fabric::RankCtx& ctx, std::size_t offset) {
  ctx.barrier();  // all ranks done with the block
  if (ctx.rank() == 0) {
    std::scoped_lock lock(mu_);
    const auto it = live_.find(offset);
    FOMPI_REQUIRE(it != live_.end(), ErrClass::arg,
                  "symmetric heap: unknown allocation offset");
    live_.erase(it);
  }
  ctx.barrier();
}

std::byte* SymHeap::rank_ptr(int rank, std::size_t offset) {
  return arena_.data() + static_cast<std::size_t>(rank) * per_rank_ + offset;
}

const rdma::RegionDesc& SymHeap::rank_desc(int rank) const {
  return descs_.at(static_cast<std::size_t>(rank));
}

std::size_t SymHeap::allocated_bytes() const {
  std::scoped_lock lock(mu_);
  std::size_t total = 0;
  for (const auto& [off, len] : live_) total += len;
  return total;
}

}  // namespace fompi::core

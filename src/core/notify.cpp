#include "core/notify.hpp"

#include <atomic>
#include <mutex>
#include <thread>

#include "common/backoff.hpp"
#include "core/win_internal.hpp"
#include "fabric/progress/progress.hpp"
#include "trace/trace.hpp"

namespace fompi::core {

// ---------------------------------------------------------------------------
// Win notified access: veneer over fabric::progress::NotifyPlane.
// ---------------------------------------------------------------------------

void Win::notify_enable(fabric::RankCtx& ctx, std::size_t capacity) {
  Shared& s = sh();
  {
    std::lock_guard<std::mutex> g(s.notify_mu);
    if (s.notify == nullptr) {
      s.notify = std::make_shared<fabric::progress::NotifyPlane>(*s.fabric,
                                                                 capacity);
    }
  }
  s.notify->attach(rank_);
  ctx.barrier();  // every ring registered before anyone posts
}

rdma::OpStatus Win::put_notify(const void* origin, std::size_t len, int target,
                               std::size_t tdisp, std::uint64_t tag) {
  Shared& s = sh();
  FOMPI_REQUIRE(s.notify != nullptr, ErrClass::op,
                "put_notify: call notify_enable first");
  put(origin, len, target, tdisp);
  // Remote completion of the payload must precede the notification record:
  // RDMA gives no ordering between a put and the record's stamp, and the
  // stamp is the consumer's readiness signal for the payload.
  const rdma::OpStatus st = flush_checked(target);
  if (st != rdma::OpStatus::ok) return st;
  return s.notify->post(rank_, target, tag, tdisp, len);
}

bool Win::notify_probe(std::uint64_t tag, fabric::progress::NotifyRecord* out) {
  Shared& s = sh();
  FOMPI_REQUIRE(s.notify != nullptr, ErrClass::op,
                "notify_probe: call notify_enable first");
  return s.notify->probe(rank_, tag, out);
}

std::size_t Win::notify_waitsome(std::uint64_t tag,
                                 fabric::progress::NotifyRecord* out,
                                 std::size_t max, int source,
                                 rdma::OpStatus* status) {
  Shared& s = sh();
  FOMPI_REQUIRE(s.notify != nullptr, ErrClass::op,
                "notify_waitsome: call notify_enable first");
  return s.notify->waitsome(rank_, tag, out, max, source, status);
}

fabric::progress::NotifyPlane* Win::notify_plane() { return sh().notify.get(); }

NotifyWin::NotifyWin(fabric::RankCtx& ctx, std::size_t bytes, int num_ids,
                     WinConfig cfg)
    : bytes_((bytes + 7) / 8 * 8), num_ids_(num_ids) {
  FOMPI_REQUIRE(num_ids >= 1, ErrClass::arg,
                "NotifyWin needs at least one notification id");
  win_ = Win::allocate(
      ctx, bytes_ + 8 * static_cast<std::size_t>(num_ids), cfg);
  win_.lock_all();
  ctx.barrier();
}

void NotifyWin::destroy(fabric::RankCtx& ctx) {
  ctx.barrier();
  win_.unlock_all();
  win_.free();
}

void* NotifyWin::base() { return win_.base(); }

void NotifyWin::put_notify(const void* src, std::size_t len, int target,
                           std::size_t tdisp, int id) {
  FOMPI_REQUIRE(id >= 0 && id < num_ids_, ErrClass::arg,
                "put_notify: notification id out of range");
  FOMPI_REQUIRE(tdisp + len <= bytes_, ErrClass::rma_range,
                "put_notify: access beyond the data region");
  win_.put(src, len, target, tdisp);
  // Remote completion of the payload must precede the notification: on
  // RDMA ordering cannot be assumed between a put and an AMO.
  win_.flush(target);
  const std::uint64_t one = 1;
  win_.accumulate(&one, 1, Elem::u64, RedOp::sum, target, notify_off(id));
  win_.flush(target);
}

void NotifyWin::put_notify_async(const void* src, std::size_t len,
                                 int target, std::size_t tdisp, int id) {
  FOMPI_REQUIRE(id >= 0 && id < num_ids_, ErrClass::arg,
                "put_notify_async: notification id out of range");
  FOMPI_REQUIRE(tdisp + len <= bytes_, ErrClass::rma_range,
                "put_notify_async: access beyond the data region");
  win_.put(src, len, target, tdisp);
  pending_.emplace_back(target, id);
}

void NotifyWin::commit_notifications() {
  if (pending_.empty()) return;
  win_.flush_all();  // every payload remotely complete
  const std::uint64_t one = 1;
  for (const auto& [target, id] : pending_) {
    win_.accumulate(&one, 1, Elem::u64, RedOp::sum, target, notify_off(id));
  }
  pending_.clear();
  win_.flush_all();  // every notification committed
}

std::uint64_t NotifyWin::test_notify(int id) {
  FOMPI_REQUIRE(id >= 0 && id < num_ids_, ErrClass::arg,
                "test_notify: notification id out of range");
  auto* word = reinterpret_cast<std::uint64_t*>(
      static_cast<std::byte*>(win_.base()) + notify_off(id));
  return std::atomic_ref<std::uint64_t>(*word).load(
      std::memory_order_acquire);
}

void NotifyWin::wait_notify(int id, std::uint64_t count) {
  FOMPI_REQUIRE(id >= 0 && id < num_ids_, ErrClass::arg,
                "wait_notify: notification id out of range");
  const trace::Span tsp(trace::EvClass::notify_wait, -1, count);
  auto* word = reinterpret_cast<std::uint64_t*>(
      static_cast<std::byte*>(win_.base()) + notify_off(id));
  std::atomic_ref<std::uint64_t> counter(*word);
  Backoff backoff;
  std::uint64_t seen = counter.load(std::memory_order_acquire);
  while (seen < count) {
    win_.yield_check();
    backoff.pause();
    const std::uint64_t now = counter.load(std::memory_order_acquire);
    // Partial progress (some notifications landed) resets the back-off so a
    // trickle of producers keeps the consumer responsive.
    if (now != seen) backoff.reset();
    seen = now;
  }
  counter.fetch_sub(count, std::memory_order_acq_rel);
  win_.sync();  // notified data readable after the fence
}

}  // namespace fompi::core

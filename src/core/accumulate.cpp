// The accumulate family (Sec 2.4).
//
// Two paths, as in foMPI:
//   * accelerated — 8-byte integer SUM/AND/OR/XOR/REPLACE map to one NIC
//     AMO per element (DMAPP-accelerated ops);
//   * fallback — everything else runs the true-passive protocol: lock the
//     target's internal accumulate lock, get the span, combine locally,
//     put it back, unlock. This serializes concurrent accumulates at the
//     target but needs no receiver involvement (the paper's design; its
//     latency/bandwidth trade-off is visible in Fig 6a).
//
// Datatype accumulates ride the same lowering machinery as put/get: the
// allocation-free pair_layouts() walk, the hoisted target resolution for
// static windows, and — for the fallback — one vectored get that gathers
// every target fragment into the recycled combine buffer, one local
// combine pass, and one vectored put that scatters the results back. All
// temporary storage is per-Win scratch recycled across calls.
#include "core/window.hpp"

#include <cstring>
#include <vector>

#include "common/backoff.hpp"
#include "common/instr.hpp"
#include "core/win_internal.hpp"

namespace fompi::core {

namespace {

/// Notes an upcoming capacity growth of a recycled scratch vector (the
/// steady-state accumulate path allocates nothing).
void note_growth(std::size_t need, std::size_t capacity) {
  if (need > capacity) count(Op::pool_grow);
}

}  // namespace

void Win::acc_lock_acquire(int target) {
  Shared& s = sh();
  rdma::Nic& n = nic();
  const auto& tdesc = s.ctrl_desc[static_cast<std::size_t>(target)];
  const std::uint64_t mine = static_cast<std::uint64_t>(rank_) + 1;
  Backoff backoff;
  while (n.amo(target, tdesc, CtrlLayout::kAccLock, rdma::AmoOp::cas, mine,
               0) != 0) {
    backoff.pause();
    s.fabric->check_abort();
  }
}

void Win::acc_lock_release(int target) {
  Shared& s = sh();
  nic().amo(target, s.ctrl_desc[static_cast<std::size_t>(target)],
            CtrlLayout::kAccLock, rdma::AmoOp::swap, 0);
}

void Win::accumulate_fallback(const void* origin, void* fetch,
                              std::size_t count, Elem e, RedOp op, int target,
                              std::size_t tdisp) {
  const std::size_t len = count * elem_size(e);
  rdma::RegionDesc desc;
  std::size_t off = 0;
  resolve_target(target, tdisp, len, &desc, &off);
  rdma::Nic& n = nic();
  std::vector<std::byte>& tmp = st().acc_tmp;
  note_growth(len, tmp.capacity());
  tmp.resize(len);
  acc_lock_acquire(target);
  n.get(target, desc, off, tmp.data(), len);
  if (fetch != nullptr) std::memcpy(fetch, tmp.data(), len);
  if (op != RedOp::no_op) {
    combine(e, op, tmp.data(), origin, count);
    n.put(target, desc, off, tmp.data(), len);
  }
  acc_lock_release(target);
}

void Win::accumulate(const void* origin, std::size_t count, Elem e, RedOp op,
                     int target, std::size_t tdisp) {
  require_access(target);
  FOMPI_REQUIRE(op != RedOp::no_op, ErrClass::op,
                "accumulate with no_op has no effect; use get_accumulate");
  if (amo_accelerated(e, op)) {
    const std::size_t len = count * 8;
    rdma::RegionDesc desc;
    std::size_t off = 0;
    resolve_target(target, tdisp, len, &desc, &off);
    const auto* vals = static_cast<const std::uint64_t*>(origin);
    rdma::Nic& n = nic();
    const rdma::AmoOp opcode = amo_opcode(op);
    for (std::size_t i = 0; i < count; ++i) {
      n.amo_nbi(target, desc, off + 8 * i, opcode, vals[i]);
    }
    return;
  }
  accumulate_fallback(origin, nullptr, count, e, op, target, tdisp);
}

void Win::accumulate(const void* origin, int ocount,
                     const dt::Datatype& otype, Elem e, RedOp op, int target,
                     std::size_t tdisp, int tcount,
                     const dt::Datatype& ttype) {
  require_access(target);
  FOMPI_REQUIRE(op != RedOp::no_op, ErrClass::op,
                "accumulate with no_op has no effect; use get_accumulate");
  const std::size_t esz = elem_size(e);
  // Contiguous pairs reduce to the plain call.
  if (otype.is_contiguous() && ttype.is_contiguous()) {
    const std::size_t len = otype.size() * static_cast<std::size_t>(ocount);
    FOMPI_REQUIRE(len == ttype.size() * static_cast<std::size_t>(tcount) &&
                      len % esz == 0,
                  ErrClass::type, "accumulate: payload mismatch");
    accumulate(origin, len / esz, e, op, target, tdisp);
    return;
  }
  const auto* obase = static_cast<const std::byte*>(origin);
  rdma::Nic& n = nic();
  const bool dynamic = sh().kind == WinKind::dynamic;

  if (amo_accelerated(e, op)) {
    const rdma::AmoOp opcode = amo_opcode(op);
    if (!dynamic) {
      // Static window: one descriptor covers every fragment's AMOs.
      rdma::RegionDesc desc;
      std::size_t off = 0;
      if (tcount > 0) {
        resolve_target(
            target, tdisp,
            static_cast<std::size_t>(tcount - 1) * ttype.extent() +
                ttype.span_end(),
            &desc, &off);
      }
      dt::pair_layouts(
          otype, ocount, ttype, tcount, tdisp,
          [&](std::size_t ooff, std::size_t toff, std::size_t len) {
            FOMPI_REQUIRE(len % esz == 0 && ooff % esz == 0, ErrClass::type,
                          "accumulate: fragment splits an element");
            const std::size_t foff = off + (toff - tdisp);
            for (std::size_t i = 0; i < len; i += 8) {
              std::uint64_t v;
              std::memcpy(&v, obase + ooff + i, 8);
              n.amo_nbi(target, desc, foff + i, opcode, v);
            }
          });
      return;
    }
    dt::pair_layouts(
        otype, ocount, ttype, tcount, tdisp,
        [&](std::size_t ooff, std::size_t toff, std::size_t len) {
          FOMPI_REQUIRE(len % esz == 0 && ooff % esz == 0, ErrClass::type,
                        "accumulate: fragment splits an element");
          rdma::RegionDesc desc;
          std::size_t off = 0;
          resolve_target(target, toff, len, &desc, &off);
          for (std::size_t i = 0; i < len; i += 8) {
            std::uint64_t v;
            std::memcpy(&v, obase + ooff + i, 8);
            n.amo_nbi(target, desc, off + i, opcode, v);
          }
        });
    return;
  }

  RankState& rs = st();
  if (!dynamic) {
    // Fallback, static window: gather every target fragment with one
    // vectored get into the packed combine buffer, reduce locally, scatter
    // the results back with one vectored put — three network ops total
    // under the single target lock instead of two per fragment.
    rdma::RegionDesc desc;
    std::size_t off = 0;
    const std::size_t span =
        tcount > 0 ? static_cast<std::size_t>(tcount - 1) * ttype.extent() +
                         ttype.span_end()
                   : 0;
    resolve_target(target, tdisp, span, &desc, &off);
    rs.frag_scratch.clear();
    std::size_t packed = 0;
    dt::pair_layouts(otype, ocount, ttype, tcount, tdisp,
                     [&](std::size_t ooff, std::size_t toff, std::size_t len) {
                       FOMPI_REQUIRE(len % esz == 0 && ooff % esz == 0,
                                     ErrClass::type,
                                     "accumulate: fragment splits an element");
                       note_growth(rs.frag_scratch.size() + 1,
                                   rs.frag_scratch.capacity());
                       rs.frag_scratch.push_back({packed, toff - tdisp, len});
                       packed += len;
                     });
    if (rs.frag_scratch.empty()) return;
    note_growth(packed, rs.acc_tmp.capacity());
    rs.acc_tmp.resize(packed);
    acc_lock_acquire(target);
    n.wait(n.get_nbv(target, desc, off, span, rs.acc_tmp.data(),
                     rs.frag_scratch.data(), rs.frag_scratch.size()));
    std::size_t pos = 0;
    dt::pair_layouts(otype, ocount, ttype, tcount, tdisp,
                     [&](std::size_t ooff, std::size_t, std::size_t len) {
                       combine(e, op, rs.acc_tmp.data() + pos, obase + ooff,
                               len / esz);
                       pos += len;
                     });
    n.wait(n.put_nbv(target, desc, off, span, rs.acc_tmp.data(),
                     rs.frag_scratch.data(), rs.frag_scratch.size()));
    acc_lock_release(target);
    return;
  }

  // Dynamic window: fragments may land in different attached regions, so
  // each one resolves and moves individually, still under one lock.
  acc_lock_acquire(target);
  dt::pair_layouts(otype, ocount, ttype, tcount, tdisp,
                   [&](std::size_t ooff, std::size_t toff, std::size_t len) {
                     FOMPI_REQUIRE(len % esz == 0 && ooff % esz == 0,
                                   ErrClass::type,
                                   "accumulate: fragment splits an element");
                     rdma::RegionDesc desc;
                     std::size_t off = 0;
                     resolve_target(target, toff, len, &desc, &off);
                     note_growth(len, rs.acc_tmp.capacity());
                     rs.acc_tmp.resize(len);
                     n.get(target, desc, off, rs.acc_tmp.data(), len);
                     combine(e, op, rs.acc_tmp.data(), obase + ooff,
                             len / esz);
                     n.put(target, desc, off, rs.acc_tmp.data(), len);
                   });
  acc_lock_release(target);
}

RmaRequest Win::raccumulate(const void* origin, std::size_t count, Elem e,
                            RedOp op, int target, std::size_t tdisp) {
  require_access(target);
  FOMPI_REQUIRE(op != RedOp::no_op, ErrClass::op,
                "raccumulate with no_op has no effect");
  RmaRequest req;
  req.nic_ = &nic();
  if (amo_accelerated(e, op)) {
    const std::size_t len = count * 8;
    rdma::RegionDesc desc;
    std::size_t off = 0;
    resolve_target(target, tdisp, len, &desc, &off);
    const auto* vals = static_cast<const std::uint64_t*>(origin);
    const rdma::AmoOp opcode = amo_opcode(op);
    req.handles_.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
      req.handles_.push_back(req.nic_->amo_nb(target, desc, off + 8 * i,
                                              opcode, vals[i], 0, nullptr));
    }
    return req;
  }
  // Fallback ops complete eagerly; the request is immediately done.
  accumulate_fallback(origin, nullptr, count, e, op, target, tdisp);
  return req;
}

void Win::get_accumulate(const void* origin, void* result, std::size_t count,
                         Elem e, RedOp op, int target, std::size_t tdisp) {
  require_access(target);
  FOMPI_REQUIRE(result != nullptr, ErrClass::arg,
                "get_accumulate needs a result buffer");
  if (amo_accelerated(e, op) || (op == RedOp::no_op && elem_size(e) == 8)) {
    const std::size_t len = count * 8;
    rdma::RegionDesc desc;
    std::size_t off = 0;
    resolve_target(target, tdisp, len, &desc, &off);
    const auto* vals = static_cast<const std::uint64_t*>(origin);
    auto* out = static_cast<std::uint64_t*>(result);
    rdma::Nic& n = nic();
    // Explicit nonblocking AMOs, completed together: fetch results land in
    // the result buffer in element order.
    std::vector<rdma::Handle> handles;
    handles.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
      if (op == RedOp::no_op) {
        handles.push_back(n.amo_nb(target, desc, off + 8 * i,
                                   rdma::AmoOp::read, 0, 0, &out[i]));
      } else {
        handles.push_back(n.amo_nb(target, desc, off + 8 * i, amo_opcode(op),
                                   vals[i], 0, &out[i]));
      }
    }
    for (rdma::Handle h : handles) n.wait(h);
    return;
  }
  accumulate_fallback(origin, result, count, e, op, target, tdisp);
}

void Win::fetch_and_op(const void* origin, void* result, Elem e, RedOp op,
                       int target, std::size_t tdisp) {
  get_accumulate(origin, result, 1, e, op, target, tdisp);
}

RmaRequest Win::rfetch_and_op(const void* origin, void* result, Elem e,
                              RedOp op, int target, std::size_t tdisp) {
  require_access(target);
  FOMPI_REQUIRE(result != nullptr, ErrClass::arg,
                "rfetch_and_op needs a result buffer");
  RmaRequest req;
  req.nic_ = &nic();
  if (amo_accelerated(e, op) || (op == RedOp::no_op && elem_size(e) == 8)) {
    rdma::RegionDesc desc;
    std::size_t off = 0;
    resolve_target(target, tdisp, 8, &desc, &off);
    std::uint64_t v = 0;
    if (op != RedOp::no_op) std::memcpy(&v, origin, 8);
    req.handles_.push_back(req.nic_->amo_nb(
        target, desc, off,
        op == RedOp::no_op ? rdma::AmoOp::read : amo_opcode(op), v, 0,
        static_cast<std::uint64_t*>(result)));
    return req;
  }
  // Fallback ops complete eagerly; the request is immediately done.
  accumulate_fallback(origin, result, 1, e, op, target, tdisp);
  return req;
}

RmaRequest Win::rcompare_and_swap(const void* origin, const void* compare,
                                  void* result, Elem e, int target,
                                  std::size_t tdisp) {
  require_access(target);
  FOMPI_REQUIRE(e != Elem::f32 && e != Elem::f64, ErrClass::type,
                "rcompare_and_swap requires an integer type");
  RmaRequest req;
  req.nic_ = &nic();
  if (elem_size(e) == 8) {
    rdma::RegionDesc desc;
    std::size_t off = 0;
    resolve_target(target, tdisp, 8, &desc, &off);
    std::uint64_t o, c;
    std::memcpy(&o, origin, 8);
    std::memcpy(&c, compare, 8);
    req.handles_.push_back(
        req.nic_->amo_nb(target, desc, off, rdma::AmoOp::cas, o, c,
                         static_cast<std::uint64_t*>(result)));
    return req;
  }
  // 4-byte CAS runs the lock-based fallback eagerly; already done.
  compare_and_swap(origin, compare, result, e, target, tdisp);
  return req;
}

void Win::compare_and_swap(const void* origin, const void* compare,
                           void* result, Elem e, int target,
                           std::size_t tdisp) {
  require_access(target);
  FOMPI_REQUIRE(e != Elem::f32 && e != Elem::f64, ErrClass::type,
                "compare_and_swap requires an integer type");
  if (elem_size(e) == 8) {
    rdma::RegionDesc desc;
    std::size_t off = 0;
    resolve_target(target, tdisp, 8, &desc, &off);
    std::uint64_t o, c;
    std::memcpy(&o, origin, 8);
    std::memcpy(&c, compare, 8);
    const std::uint64_t prev =
        nic().amo(target, desc, off, rdma::AmoOp::cas, o, c);
    std::memcpy(result, &prev, 8);
    return;
  }
  // 4-byte CAS is not hardware-accelerated: run it under the fallback lock.
  rdma::RegionDesc desc;
  std::size_t off = 0;
  resolve_target(target, tdisp, 4, &desc, &off);
  rdma::Nic& n = nic();
  acc_lock_acquire(target);
  std::uint32_t cur;
  n.get(target, desc, off, &cur, 4);
  std::memcpy(result, &cur, 4);
  std::uint32_t cmp;
  std::memcpy(&cmp, compare, 4);
  if (cur == cmp) {
    n.put(target, desc, off, origin, 4);
  }
  acc_lock_release(target);
}

}  // namespace fompi::core

// The accumulate family (Sec 2.4).
//
// Two paths, as in foMPI:
//   * accelerated — 8-byte integer SUM/AND/OR/XOR/REPLACE map to one NIC
//     AMO per element (DMAPP-accelerated ops);
//   * fallback — everything else runs the true-passive protocol: lock the
//     target's internal accumulate lock, get the span, combine locally,
//     put it back, unlock. This serializes concurrent accumulates at the
//     target but needs no receiver involvement (the paper's design; its
//     latency/bandwidth trade-off is visible in Fig 6a).
#include "core/window.hpp"

#include <cstring>
#include <vector>

#include "common/backoff.hpp"
#include "common/instr.hpp"
#include "core/win_internal.hpp"

namespace fompi::core {

void Win::acc_lock_acquire(int target) {
  Shared& s = sh();
  rdma::Nic& n = nic();
  const auto& tdesc = s.ctrl_desc[static_cast<std::size_t>(target)];
  const std::uint64_t mine = static_cast<std::uint64_t>(rank_) + 1;
  Backoff backoff;
  while (n.amo(target, tdesc, CtrlLayout::kAccLock, rdma::AmoOp::cas, mine,
               0) != 0) {
    backoff.pause();
    s.fabric->check_abort();
  }
}

void Win::acc_lock_release(int target) {
  Shared& s = sh();
  nic().amo(target, s.ctrl_desc[static_cast<std::size_t>(target)],
            CtrlLayout::kAccLock, rdma::AmoOp::swap, 0);
}

void Win::accumulate_fallback(const void* origin, void* fetch,
                              std::size_t count, Elem e, RedOp op, int target,
                              std::size_t tdisp) {
  const std::size_t len = count * elem_size(e);
  rdma::RegionDesc desc;
  std::size_t off = 0;
  resolve_target(target, tdisp, len, &desc, &off);
  rdma::Nic& n = nic();
  acc_lock_acquire(target);
  std::vector<std::byte> tmp(len);
  n.get(target, desc, off, tmp.data(), len);
  if (fetch != nullptr) std::memcpy(fetch, tmp.data(), len);
  if (op != RedOp::no_op) {
    combine(e, op, tmp.data(), origin, count);
    n.put(target, desc, off, tmp.data(), len);
  }
  acc_lock_release(target);
}

void Win::accumulate(const void* origin, std::size_t count, Elem e, RedOp op,
                     int target, std::size_t tdisp) {
  require_access(target);
  FOMPI_REQUIRE(op != RedOp::no_op, ErrClass::op,
                "accumulate with no_op has no effect; use get_accumulate");
  if (amo_accelerated(e, op)) {
    const std::size_t len = count * 8;
    rdma::RegionDesc desc;
    std::size_t off = 0;
    resolve_target(target, tdisp, len, &desc, &off);
    const auto* vals = static_cast<const std::uint64_t*>(origin);
    rdma::Nic& n = nic();
    const rdma::AmoOp opcode = amo_opcode(op);
    for (std::size_t i = 0; i < count; ++i) {
      n.amo_nbi(target, desc, off + 8 * i, opcode, vals[i]);
    }
    return;
  }
  accumulate_fallback(origin, nullptr, count, e, op, target, tdisp);
}

void Win::accumulate(const void* origin, int ocount,
                     const dt::Datatype& otype, Elem e, RedOp op, int target,
                     std::size_t tdisp, int tcount,
                     const dt::Datatype& ttype) {
  require_access(target);
  FOMPI_REQUIRE(op != RedOp::no_op, ErrClass::op,
                "accumulate with no_op has no effect; use get_accumulate");
  const std::size_t esz = elem_size(e);
  // Contiguous pairs reduce to the plain call.
  if (otype.is_contiguous() && ttype.is_contiguous()) {
    const std::size_t len = otype.size() * static_cast<std::size_t>(ocount);
    FOMPI_REQUIRE(len == ttype.size() * static_cast<std::size_t>(tcount) &&
                      len % esz == 0,
                  ErrClass::type, "accumulate: payload mismatch");
    accumulate(origin, len / esz, e, op, target, tdisp);
    return;
  }
  std::vector<dt::Block> oblocks, tblocks;
  otype.flatten(0, ocount, oblocks);
  ttype.flatten(tdisp, tcount, tblocks);
  const auto* obase = static_cast<const std::byte*>(origin);

  if (amo_accelerated(e, op)) {
    rdma::Nic& n = nic();
    const rdma::AmoOp opcode = amo_opcode(op);
    dt::pair_blocks(oblocks, tblocks,
                    [&](std::size_t ooff, std::size_t toff, std::size_t len) {
                      FOMPI_REQUIRE(len % esz == 0 && ooff % esz == 0,
                                    ErrClass::type,
                                    "accumulate: fragment splits an element");
                      rdma::RegionDesc desc;
                      std::size_t off = 0;
                      resolve_target(target, toff, len, &desc, &off);
                      for (std::size_t i = 0; i < len; i += 8) {
                        std::uint64_t v;
                        std::memcpy(&v, obase + ooff + i, 8);
                        n.amo_nbi(target, desc, off + i, opcode, v);
                      }
                    });
    return;
  }
  // Fallback: one lock around the whole transfer keeps the operation
  // atomic as a unit, fragments move with get-combine-put.
  rdma::Nic& n = nic();
  acc_lock_acquire(target);
  std::vector<std::byte> tmp;
  dt::pair_blocks(oblocks, tblocks,
                  [&](std::size_t ooff, std::size_t toff, std::size_t len) {
                    FOMPI_REQUIRE(len % esz == 0, ErrClass::type,
                                  "accumulate: fragment splits an element");
                    rdma::RegionDesc desc;
                    std::size_t off = 0;
                    resolve_target(target, toff, len, &desc, &off);
                    tmp.resize(len);
                    n.get(target, desc, off, tmp.data(), len);
                    combine(e, op, tmp.data(), obase + ooff, len / esz);
                    n.put(target, desc, off, tmp.data(), len);
                  });
  acc_lock_release(target);
}

RmaRequest Win::raccumulate(const void* origin, std::size_t count, Elem e,
                            RedOp op, int target, std::size_t tdisp) {
  require_access(target);
  FOMPI_REQUIRE(op != RedOp::no_op, ErrClass::op,
                "raccumulate with no_op has no effect");
  RmaRequest req;
  req.nic_ = &nic();
  if (amo_accelerated(e, op)) {
    const std::size_t len = count * 8;
    rdma::RegionDesc desc;
    std::size_t off = 0;
    resolve_target(target, tdisp, len, &desc, &off);
    const auto* vals = static_cast<const std::uint64_t*>(origin);
    const rdma::AmoOp opcode = amo_opcode(op);
    req.handles_.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
      req.handles_.push_back(req.nic_->amo_nb(target, desc, off + 8 * i,
                                              opcode, vals[i], 0, nullptr));
    }
    return req;
  }
  // Fallback ops complete eagerly; the request is immediately done.
  accumulate_fallback(origin, nullptr, count, e, op, target, tdisp);
  return req;
}

void Win::get_accumulate(const void* origin, void* result, std::size_t count,
                         Elem e, RedOp op, int target, std::size_t tdisp) {
  require_access(target);
  FOMPI_REQUIRE(result != nullptr, ErrClass::arg,
                "get_accumulate needs a result buffer");
  if (amo_accelerated(e, op) || (op == RedOp::no_op && elem_size(e) == 8)) {
    const std::size_t len = count * 8;
    rdma::RegionDesc desc;
    std::size_t off = 0;
    resolve_target(target, tdisp, len, &desc, &off);
    const auto* vals = static_cast<const std::uint64_t*>(origin);
    auto* out = static_cast<std::uint64_t*>(result);
    rdma::Nic& n = nic();
    // Explicit nonblocking AMOs, completed together: fetch results land in
    // the result buffer in element order.
    std::vector<rdma::Handle> handles;
    handles.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
      if (op == RedOp::no_op) {
        handles.push_back(n.amo_nb(target, desc, off + 8 * i,
                                   rdma::AmoOp::read, 0, 0, &out[i]));
      } else {
        handles.push_back(n.amo_nb(target, desc, off + 8 * i, amo_opcode(op),
                                   vals[i], 0, &out[i]));
      }
    }
    for (rdma::Handle h : handles) n.wait(h);
    return;
  }
  accumulate_fallback(origin, result, count, e, op, target, tdisp);
}

void Win::fetch_and_op(const void* origin, void* result, Elem e, RedOp op,
                       int target, std::size_t tdisp) {
  get_accumulate(origin, result, 1, e, op, target, tdisp);
}

void Win::compare_and_swap(const void* origin, const void* compare,
                           void* result, Elem e, int target,
                           std::size_t tdisp) {
  require_access(target);
  FOMPI_REQUIRE(e != Elem::f32 && e != Elem::f64, ErrClass::type,
                "compare_and_swap requires an integer type");
  if (elem_size(e) == 8) {
    rdma::RegionDesc desc;
    std::size_t off = 0;
    resolve_target(target, tdisp, 8, &desc, &off);
    std::uint64_t o, c;
    std::memcpy(&o, origin, 8);
    std::memcpy(&c, compare, 8);
    const std::uint64_t prev =
        nic().amo(target, desc, off, rdma::AmoOp::cas, o, c);
    std::memcpy(result, &prev, 8);
    return;
  }
  // 4-byte CAS is not hardware-accelerated: run it under the fallback lock.
  rdma::RegionDesc desc;
  std::size_t off = 0;
  resolve_target(target, tdisp, 4, &desc, &off);
  rdma::Nic& n = nic();
  acc_lock_acquire(target);
  std::uint32_t cur;
  n.get(target, desc, off, &cur, 4);
  std::memcpy(result, &cur, 4);
  std::uint32_t cmp;
  std::memcpy(&cmp, compare, 4);
  if (cur == cmp) {
    n.put(target, desc, off, origin, 4);
  }
  acc_lock_release(target);
}

}  // namespace fompi::core

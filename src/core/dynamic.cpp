// Dynamic windows (Sec 2.2, "Dynamic Windows").
//
// attach/detach are non-collective: the owner maintains a directory of
// exposed regions in its control block and bumps an id counter on every
// change. Origins address dynamic windows by absolute remote address and
// keep a per-target descriptor cache. Two coherence protocols:
//   * DynMode::id_counter (the paper's base design): before every access
//     the origin reads the target's id with one remote read; on mismatch
//     it refetches the directory with one-sided reads (seqlock-style:
//     id / directory / id, retry while they differ).
//   * DynMode::notify (the paper's optimized variant): origins register in
//     the target's cacher list; detach pushes an invalidation flag to all
//     registered cachers and discards the list, so the common-case access
//     needs only a local flag check. Better latency, small memory overhead,
//     suboptimal for frequent detaches — the trade-off quoted in the paper
//     and measured by bench_ablation_dynamic.
#include "core/window.hpp"

#include <cstring>

#include "common/backoff.hpp"
#include "common/instr.hpp"
#include "core/win_internal.hpp"

namespace fompi::core {

void Win::attach(void* base, std::size_t bytes) {
  Shared& s = sh();
  RankState& rs = st();
  FOMPI_REQUIRE(s.kind == WinKind::dynamic, ErrClass::win,
                "attach requires a dynamic window");
  FOMPI_REQUIRE(base != nullptr && bytes > 0, ErrClass::arg,
                "attach: empty region");
  const auto addr = reinterpret_cast<std::uint64_t>(base);
  for (const auto& [b, att] : rs.attached) {
    const auto a = reinterpret_cast<std::uint64_t>(b);
    FOMPI_REQUIRE(addr + bytes <= a || a + att.size <= addr,
                  ErrClass::rma_attach,
                  "attach: region overlaps an attached region");
  }
  const rdma::RegionDesc desc =
      s.fabric->domain().registry().register_region(rank_, base, bytes);
  // Find a free directory slot (we are the only writer of our directory).
  const CtrlLayout& L = s.layout;
  int slot = -1;
  for (int i = 0; i < L.max_dyn; ++i) {
    if (s.ctrl_word(rank_, L.dyndir_off(i) + 24)
            .load(std::memory_order_acquire) == 0) {
      slot = i;
      break;
    }
  }
  if (slot < 0) {
    s.fabric->domain().registry().deregister(desc.rkey);
    raise(ErrClass::rma_attach,
          "attach: directory full (raise WinConfig::max_dyn_regions)");
  }
  const std::size_t off = L.dyndir_off(slot);
  s.ctrl_word(rank_, off + 0).store(addr, std::memory_order_relaxed);
  s.ctrl_word(rank_, off + 8).store(bytes, std::memory_order_relaxed);
  s.ctrl_word(rank_, off + 16).store(desc.rkey, std::memory_order_relaxed);
  s.ctrl_word(rank_, off + 24).store(1, std::memory_order_release);
  s.ctrl_word(rank_, CtrlLayout::kDynId)
      .fetch_add(1, std::memory_order_acq_rel);
  rs.attached.emplace(base, RankState::Attached{desc.rkey, slot, bytes});
}

void Win::detach(void* base) {
  Shared& s = sh();
  RankState& rs = st();
  FOMPI_REQUIRE(s.kind == WinKind::dynamic, ErrClass::win,
                "detach requires a dynamic window");
  const auto it = rs.attached.find(base);
  FOMPI_REQUIRE(it != rs.attached.end(), ErrClass::rma_attach,
                "detach: region was not attached");
  const CtrlLayout& L = s.layout;
  const std::size_t off = L.dyndir_off(it->second.slot);
  s.ctrl_word(rank_, off + 24).store(0, std::memory_order_release);
  s.ctrl_word(rank_, CtrlLayout::kDynId)
      .fetch_add(1, std::memory_order_acq_rel);
  s.fabric->domain().registry().deregister(it->second.rkey);
  rs.attached.erase(it);

  if (s.cfg.dyn_mode == DynMode::notify) {
    // Push an invalidation to every registered cacher, then discard the
    // cacher list (it rebuilds on the cachers' next access).
    rdma::Nic& n = nic();
    for (int i = 0; i < L.max_cachers; ++i) {
      auto slot_word = s.ctrl_word(rank_, L.cachers_off(i));
      const std::uint64_t v = slot_word.exchange(0, std::memory_order_acq_rel);
      if (v == 0) continue;
      const int cacher = static_cast<int>(v - 1);
      n.amo(cacher, s.ctrl_desc[static_cast<std::size_t>(cacher)],
            CtrlLayout::kDynInval, rdma::AmoOp::swap, 1);
    }
  }
}

void Win::refresh_dyn_cache(int target) {
  Shared& s = sh();
  RankState& rs = st();
  const CtrlLayout& L = s.layout;
  rdma::Nic& n = nic();
  const auto& tdesc = s.ctrl_desc[static_cast<std::size_t>(target)];
  auto& cache = rs.dyn_cache[static_cast<std::size_t>(target)];
  std::vector<std::uint64_t> dir(4 * static_cast<std::size_t>(L.max_dyn));
  std::uint64_t id1 = 0;
  // Seqlock-style: the directory snapshot is only valid if the id did not
  // change while we were reading it.
  Backoff backoff;
  while (true) {
    id1 = n.amo(target, tdesc, CtrlLayout::kDynId, rdma::AmoOp::read, 0);
    n.get(target, tdesc, L.dyndir_off(0), dir.data(),
          dir.size() * sizeof(std::uint64_t));
    const std::uint64_t id2 =
        n.amo(target, tdesc, CtrlLayout::kDynId, rdma::AmoOp::read, 0);
    if (id1 == id2) break;
    backoff.pause();
    s.fabric->check_abort();
  }
  cache.entries.clear();
  for (int i = 0; i < L.max_dyn; ++i) {
    const std::size_t base = 4 * static_cast<std::size_t>(i);
    if (dir[base + 3] == 0) continue;  // slot not valid
    cache.entries.push_back(
        RankState::DynEntry{dir[base + 0], dir[base + 1], dir[base + 2]});
  }
  cache.id = id1;
}

void Win::resolve_dynamic(int target, std::size_t tdisp, std::size_t len,
                          rdma::RegionDesc* desc, std::size_t* offset) {
  Shared& s = sh();
  RankState& rs = st();
  const CtrlLayout& L = s.layout;
  auto& cache = rs.dyn_cache[static_cast<std::size_t>(target)];
  rdma::Nic& n = nic();
  const auto& tdesc = s.ctrl_desc[static_cast<std::size_t>(target)];

  if (s.cfg.dyn_mode == DynMode::id_counter) {
    // Base protocol: one remote read of the id per access.
    const std::uint64_t id =
        n.amo(target, tdesc, CtrlLayout::kDynId, rdma::AmoOp::read, 0);
    if (id != cache.id) refresh_dyn_cache(target);
  } else {
    // Optimized protocol: a local flag check in the common case.
    auto inval = s.ctrl_word(rank_, CtrlLayout::kDynInval);
    if (inval.exchange(0, std::memory_order_acq_rel) != 0) {
      // Some target detached: all caches and registrations are stale.
      for (auto& c : rs.dyn_cache) {
        c.id = ~std::uint64_t{0};
        c.entries.clear();
        c.registered = false;
      }
    }
    if (cache.id == ~std::uint64_t{0}) refresh_dyn_cache(target);
    if (!cache.registered) {
      // Register for detach notifications: acquire a cacher-list slot.
      const std::uint64_t mine = static_cast<std::uint64_t>(rank_) + 1;
      bool placed = false;
      for (int i = 0; i < L.max_cachers && !placed; ++i) {
        placed = n.amo(target, tdesc, L.cachers_off(i), rdma::AmoOp::cas,
                       mine, 0) == 0;
      }
      FOMPI_REQUIRE(placed, ErrClass::rma_attach,
                    "dynamic window: cacher list full");
      cache.registered = true;
    }
  }

  auto lookup = [&]() -> const RankState::DynEntry* {
    for (const auto& e : cache.entries) {
      if (tdisp >= e.addr && tdisp + len <= e.addr + e.size) return &e;
    }
    return nullptr;
  };
  const RankState::DynEntry* entry = lookup();
  if (entry == nullptr) {
    // A fresh attach may not be reflected yet (notify mode invalidates only
    // on detach): refetch once before reporting an error.
    refresh_dyn_cache(target);
    entry = lookup();
  }
  FOMPI_REQUIRE(entry != nullptr, ErrClass::rma_range,
                "dynamic window: address not attached at target");
  desc->rkey = entry->rkey;
  desc->owner = target;
  desc->size = entry->size;
  *offset = tdisp - entry->addr;
}

}  // namespace fompi::core

#include "core/mcs_lock.hpp"

#include <atomic>
#include <thread>

#include "common/backoff.hpp"
#include "core/win_internal.hpp"

namespace fompi::core {

namespace {

std::atomic_ref<std::uint64_t> local_word(Win& win, std::size_t disp) {
  auto* p = reinterpret_cast<std::uint64_t*>(
      static_cast<std::byte*>(win.base()) + disp);
  return std::atomic_ref<std::uint64_t>(*p);
}

/// Spin iterations between dead-predecessor probes while queued (each probe
/// costs one remote read, so it stays off the fault-free path entirely:
/// probes fire only once a rank has actually died).
constexpr int kDeadProbePeriod = 32;

}  // namespace

void McsLock::acquire() {
  last_ops_ = 0;
  const std::uint64_t mine = static_cast<std::uint64_t>(win_.rank()) + 1;
  // Prepare our queue node before publishing it.
  local_word(win_, disp_ + kNext).store(0, std::memory_order_relaxed);
  local_word(win_, disp_ + kLocked).store(1, std::memory_order_release);

  // Enqueue: one remote SWAP on the tail.
  std::uint64_t prev = 0;
  win_.fetch_and_op(&mine, &prev, Elem::u64, RedOp::replace, master_,
                    disp_ + kTail);
  ++last_ops_;
  if (prev == 0) {
    // Lock was free. Clear our own flag so the invariant "locked == 0 iff
    // this rank holds the lock" covers the uncontended case too — recovery
    // reads a dead rank's frozen flag to decide whether it died holding
    // the lock (a local store: remote op counts are unchanged).
    local_word(win_, disp_ + kLocked).store(0, std::memory_order_release);
    return;
  }

  // Link behind the predecessor: one remote SWAP on its next pointer.
  const int pred = static_cast<int>(prev - 1);
  std::uint64_t ignored = 0;
  bool linked = true;
  try {
    win_.fetch_and_op(&mine, &ignored, Elem::u64, RedOp::replace, pred,
                      disp_ + kNext);
  } catch (const RankKilledError&) {
    throw;
  } catch (const Error& e) {
    if (e.err_class() != ErrClass::peer_dead || win_.peer_alive(pred)) throw;
    linked = false;
  }
  ++last_ops_;
  if (!linked) {
    // The predecessor died before we could link behind it. Its memory image
    // is frozen and still readable: flag == 0 means it died holding the
    // lock, so we inherit it (the tail already points at us, so the queue
    // stays consistent). flag == 1 means it died while itself queued —
    // recovering the rest of its wait chain is unsupported; surface a typed
    // error rather than deadlocking.
    std::uint64_t pflag = 1;
    win_.get_accumulate(nullptr, &pflag, 1, Elem::u64, RedOp::no_op, pred,
                        disp_ + kLocked);
    FOMPI_REQUIRE(pflag == 0, ErrClass::peer_dead,
                  "mcs: predecessor died while queued (unsupported)");
    local_word(win_, disp_ + kLocked).store(0, std::memory_order_release);
    return;
  }

  // Spin on our own flag — purely local memory, zero remote traffic. The
  // yield_check propagates a peer failure instead of spinning forever on a
  // flag nobody will ever clear. Once a rank has died anywhere in the
  // fabric, periodically probe the predecessor: if it died *holding* the
  // lock (frozen flag == 0), steal it.
  auto flag = local_word(win_, disp_ + kLocked);
  Backoff backoff;
  int probe = 0;
  while (flag.load(std::memory_order_acquire) != 0) {
    win_.yield_check();
    backoff.pause();
    if (++probe % kDeadProbePeriod == 0 && !win_.peer_alive(pred)) {
      std::uint64_t pflag = 1;
      win_.get_accumulate(nullptr, &pflag, 1, Elem::u64, RedOp::no_op, pred,
                          disp_ + kLocked);
      if (pflag == 0) {
        flag.store(0, std::memory_order_release);
        break;
      }
      // The predecessor died while waiting; the releaser-side skip hands
      // the lock past it to us, so keep spinning on our own flag.
    }
  }
}

void McsLock::release() {
  const std::uint64_t mine = static_cast<std::uint64_t>(win_.rank()) + 1;
  auto next = local_word(win_, disp_ + kNext);
  if (next.load(std::memory_order_acquire) == 0) {
    // No known successor: try to swing the tail back to free.
    const std::uint64_t zero = 0;
    std::uint64_t prev = 0;
    win_.compare_and_swap(&zero, &mine, &prev, Elem::u64, master_,
                          disp_ + kTail);
    if (prev == mine) return;  // nobody queued behind us
    // A successor is in the middle of linking: wait for the pointer.
    Backoff backoff;
    while (next.load(std::memory_order_acquire) == 0) {
      win_.yield_check();
      backoff.pause();
    }
  }
  std::uint64_t succ_val = next.load(std::memory_order_acquire);
  while (true) {
    const int succ = static_cast<int>(succ_val - 1);
    const std::uint64_t zero = 0;
    std::uint64_t ignored = 0;
    try {
      win_.fetch_and_op(&zero, &ignored, Elem::u64, RedOp::replace, succ,
                        disp_ + kLocked);
      return;
    } catch (const RankKilledError&) {
      throw;
    } catch (const Error& e) {
      if (e.err_class() != ErrClass::peer_dead || win_.peer_alive(succ)) throw;
    }
    // The successor died while queued: skip it. Its frozen next pointer
    // tells us whether anyone had queued behind it.
    std::uint64_t snext = 0;
    win_.get_accumulate(nullptr, &snext, 1, Elem::u64, RedOp::no_op, succ,
                        disp_ + kNext);
    if (snext != 0) {
      succ_val = snext;
      continue;  // hand the lock to the rank queued behind the dead one
    }
    // The dead successor was the tail: swing the tail free on its behalf.
    std::uint64_t prev = 0;
    win_.compare_and_swap(&zero, &succ_val, &prev, Elem::u64, master_,
                          disp_ + kTail);
    if (prev == succ_val) return;
    // A third rank swapped the tail after the dead successor but could not
    // link behind it (the link write to dead memory fails); it surfaces a
    // typed error on its side, and so do we — neither side hangs.
    raise(ErrClass::peer_dead,
          "mcs: release raced with an enqueue behind a dead rank "
          "(unsupported)");
  }
}

}  // namespace fompi::core

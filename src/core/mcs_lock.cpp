#include "core/mcs_lock.hpp"

#include <atomic>
#include <thread>

#include "core/win_internal.hpp"

namespace fompi::core {

namespace {

std::atomic_ref<std::uint64_t> local_word(Win& win, std::size_t disp) {
  auto* p = reinterpret_cast<std::uint64_t*>(
      static_cast<std::byte*>(win.base()) + disp);
  return std::atomic_ref<std::uint64_t>(*p);
}

}  // namespace

void McsLock::acquire() {
  last_ops_ = 0;
  const std::uint64_t mine = static_cast<std::uint64_t>(win_.rank()) + 1;
  // Prepare our queue node before publishing it.
  local_word(win_, disp_ + kNext).store(0, std::memory_order_relaxed);
  local_word(win_, disp_ + kLocked).store(1, std::memory_order_release);

  // Enqueue: one remote SWAP on the tail.
  std::uint64_t prev = 0;
  win_.fetch_and_op(&mine, &prev, Elem::u64, RedOp::replace, master_,
                    disp_ + kTail);
  ++last_ops_;
  if (prev == 0) return;  // lock was free

  // Link behind the predecessor: one remote SWAP on its next pointer.
  const int pred = static_cast<int>(prev - 1);
  std::uint64_t ignored = 0;
  win_.fetch_and_op(&mine, &ignored, Elem::u64, RedOp::replace, pred,
                    disp_ + kNext);
  ++last_ops_;

  // Spin on our own flag — purely local memory, zero remote traffic. The
  // yield_check propagates a peer failure instead of spinning forever on a
  // flag nobody will ever clear.
  auto flag = local_word(win_, disp_ + kLocked);
  while (flag.load(std::memory_order_acquire) != 0) {
    win_.yield_check();
  }
}

void McsLock::release() {
  const std::uint64_t mine = static_cast<std::uint64_t>(win_.rank()) + 1;
  auto next = local_word(win_, disp_ + kNext);
  if (next.load(std::memory_order_acquire) == 0) {
    // No known successor: try to swing the tail back to free.
    const std::uint64_t zero = 0;
    std::uint64_t prev = 0;
    win_.compare_and_swap(&zero, &mine, &prev, Elem::u64, master_,
                          disp_ + kTail);
    if (prev == mine) return;  // nobody queued behind us
    // A successor is in the middle of linking: wait for the pointer.
    while (next.load(std::memory_order_acquire) == 0) {
      win_.yield_check();
    }
  }
  const int succ =
      static_cast<int>(next.load(std::memory_order_acquire) - 1);
  const std::uint64_t zero = 0;
  std::uint64_t ignored = 0;
  win_.fetch_and_op(&zero, &ignored, Elem::u64, RedOp::replace, succ,
                    disp_ + kLocked);
}

}  // namespace fompi::core

// MPI-3.0 One Sided windows: the paper's contribution.
//
// A Win is one rank's handle to a collectively created window. The four
// creation flavors of MPI-3.0 are all provided (Sec 2.2):
//   create          - exposes existing user memory; requires Ω(p) remote
//                     descriptors per process (kept deliberately, as the
//                     paper notes traditional windows are non-scalable);
//   allocate        - library-allocated memory on the symmetric heap,
//                     O(1) remote metadata per window;
//   create_dynamic  - attach/detach of regions at runtime, with the
//                     id-counter cache protocol (plus the optimized
//                     invalidation-notify variant, see DynMode);
//   allocate_shared - like allocate, plus shared_query() for direct
//                     load/store by same-node peers.
//
// Synchronization (Sec 2.3): fence, general active target (post/start/
// complete/wait with the remote matching-list protocol of Fig 2), passive
// target locks (the two-level global/local protocol of Fig 3), and the
// flush family. Communication (Sec 2.4): put/get with the contiguous fast
// path or full datatype lowering, the accumulate family with the
// DMAPP-accelerated path and the lock-based fallback, and request-based
// rput/rget.
//
// Memory model: "unified" only, as in the paper.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <set>
#include <vector>

#include "core/ops.hpp"
#include "core/sym_heap.hpp"
#include "datatype/datatype.hpp"
#include "fabric/fabric.hpp"
#include "fabric/group.hpp"

namespace fompi::fabric::progress {
class NotifyPlane;
struct NotifyRecord;
}  // namespace fompi::fabric::progress

namespace fompi::core {

/// Passive-target lock type (MPI_LOCK_SHARED / MPI_LOCK_EXCLUSIVE).
enum class LockType : std::uint8_t { shared, exclusive };

/// Dynamic-window descriptor-cache coherence protocol (Sec 2.2).
enum class DynMode : std::uint8_t {
  id_counter,  ///< origins poll the target's id counter before every access
  notify,      ///< targets push invalidations to registered cachers
};

/// Window error-handler mode (MPI_Win_set_errhandler analogue). Controls
/// what the plain (void) synchronization calls do when an operation retired
/// with a typed fault status (timeout / cq_error / peer_dead):
///   errors_are_fatal — raise a typed Error (default, MPI_ERRORS_ARE_FATAL);
///   errors_return    — record the status (query with Win::last_error) and
///                      return, so the caller can degrade gracefully. The
///                      *_checked variants return the status directly and
///                      behave identically under both modes.
enum class ErrMode : std::uint8_t { errors_are_fatal, errors_return };

/// Tuning knobs fixed at window creation.
struct WinConfig {
  /// Capacity of the PSCW matching list: the maximum number of concurrent
  /// exposure-epoch neighbors k (the paper assumes k ∈ O(log p)).
  int max_neighbors = 64;
  /// Maximum regions attachable to a dynamic window per rank.
  int max_dyn_regions = 32;
  /// Maximum registered cachers per rank in DynMode::notify.
  int max_cachers = 64;
  DynMode dyn_mode = DynMode::id_counter;
  /// Per-rank symmetric heap capacity, used when this window triggers heap
  /// construction (first allocated window on the fabric).
  std::size_t symheap_bytes = std::size_t{16} << 20;
  /// Error-handler mode for fault-model failures (see ErrMode).
  ErrMode err_mode = ErrMode::errors_are_fatal;
};

/// Completion handle for request-based operations (rput/rget/raccumulate).
class RmaRequest {
 public:
  RmaRequest() = default;
  bool valid() const noexcept { return nic_ != nullptr; }
  /// True (and releases the request) once all fragments completed.
  bool test();
  /// Blocks until all fragments completed.
  void wait();

  // --- progress-engine hooks ----------------------------------------------
  /// Fragment handles, exposed so a fiber can park on them (await) instead
  /// of spin-testing. Empty for requests that completed eagerly.
  const std::vector<rdma::Handle>& handles() const noexcept {
    return handles_;
  }
  rdma::Nic* nic() const noexcept { return nic_; }
  /// Releases the request without waiting: the caller retired every handle
  /// itself (e.g. through Scheduler::await_handle).
  void dismiss() noexcept {
    nic_ = nullptr;
    handles_.clear();
  }

 private:
  friend class Win;
  rdma::Nic* nic_ = nullptr;
  std::vector<rdma::Handle> handles_;
};

class Win {
 public:
  // --- collective creation / destruction ----------------------------------
  static Win create(fabric::RankCtx& ctx, void* base, std::size_t bytes,
                    WinConfig cfg = {});
  static Win allocate(fabric::RankCtx& ctx, std::size_t bytes,
                      WinConfig cfg = {});
  static Win create_dynamic(fabric::RankCtx& ctx, WinConfig cfg = {});
  static Win allocate_shared(fabric::RankCtx& ctx, std::size_t bytes,
                             WinConfig cfg = {});
  /// Collective; releases registrations and (for allocated windows) the
  /// symmetric-heap block. Every rank must call it.
  void free();

  Win() noexcept;
  Win(Win&&) noexcept;
  Win& operator=(Win&&) noexcept;
  Win(const Win&) = delete;
  Win& operator=(const Win&) = delete;
  ~Win();

  // --- introspection -----------------------------------------------------------
  int rank() const;
  int nranks() const;
  /// Local window base (null for dynamic windows).
  void* base() const;
  std::size_t size() const { return size(rank()); }
  std::size_t size(int target) const;
  /// Direct load/store pointer to a same-node peer's window memory
  /// (MPI_Win_shared_query; allocate_shared windows only).
  void* shared_query(int target) const;

  // --- dynamic windows -----------------------------------------------------------
  /// Non-collective. Exposes [base, base+bytes) for remote access through
  /// this window; remote ranks address it by absolute remote address.
  void attach(void* base, std::size_t bytes);
  /// Non-collective. Ends exposure of a region previously attached.
  void detach(void* base);

  // --- synchronization: active target ------------------------------------------
  /// Collective epoch separator (MPI_Win_fence).
  void fence();
  /// Opens an exposure epoch for `group` (MPI_Win_post). Nonblocking.
  void post(const fabric::Group& group);
  /// Opens an access epoch to `group` (MPI_Win_start). Blocks until every
  /// group member posted a matching exposure epoch.
  void start(const fabric::Group& group);
  /// Closes the access epoch (MPI_Win_complete): commits all operations
  /// remotely, then notifies the exposure side.
  void complete();
  /// Closes the exposure epoch (MPI_Win_wait): blocks until every access
  /// group member called complete.
  void wait();
  /// Nonblocking MPI_Win_test: true once the exposure epoch finished.
  bool test();

  // --- synchronization: passive target ----------------------------------------
  void lock(LockType type, int target);
  void unlock(int target);
  void lock_all();
  void unlock_all();
  /// Remote completion of all operations to `target` (MPI_Win_flush).
  void flush(int target);
  /// Local completion only (origin buffers reusable).
  void flush_local(int target);
  void flush_all();
  void flush_local_all();
  /// Memory barrier for mixed direct-store / RMA access (MPI_Win_sync).
  void sync();

  // --- error-returning synchronization (ErrMode-independent) -------------------
  /// Like the void variants, but faults retire as a typed status instead of
  /// raising / recording: rdma::OpStatus::ok on success, else the first
  /// failure observed (timeout / cq_error / peer_dead). Epoch bookkeeping is
  /// still torn down on failure so the window stays usable for recovery.
  rdma::OpStatus lock_checked(LockType type, int target);
  rdma::OpStatus unlock_checked(int target);
  rdma::OpStatus flush_checked(int target);
  rdma::OpStatus flush_all_checked();
  rdma::OpStatus complete_checked();
  rdma::OpStatus wait_checked();

  /// Last fault status recorded by a plain call under ErrMode::errors_return
  /// (ok if none since the last clear_last_error()).
  rdma::OpStatus last_error() const;
  void clear_last_error();
  /// False once the fault plan killed `target` (fail-stop liveness view).
  bool peer_alive(int target) const;

  // --- communication -----------------------------------------------------------
  /// Contiguous fast path: `len` bytes to byte displacement `tdisp`.
  void put(const void* origin, std::size_t len, int target,
           std::size_t tdisp);
  void get(void* origin, std::size_t len, int target, std::size_t tdisp);
  /// Full datatype path: both sides are lowered to minimal block lists and
  /// one transport operation is issued per contiguous fragment pair.
  void put(const void* origin, int ocount, const dt::Datatype& otype,
           int target, std::size_t tdisp, int tcount,
           const dt::Datatype& ttype);
  void get(void* origin, int ocount, const dt::Datatype& otype, int target,
           std::size_t tdisp, int tcount, const dt::Datatype& ttype);

  /// Request-based variants (MPI_Rput / MPI_Rget).
  RmaRequest rput(const void* origin, std::size_t len, int target,
                  std::size_t tdisp);
  RmaRequest rget(void* origin, std::size_t len, int target,
                  std::size_t tdisp);

  // --- accumulate family ---------------------------------------------------------
  /// target[i] = op(target[i], origin[i]) for `count` elements of type `e`
  /// at byte displacement `tdisp`. Atomic per element with respect to
  /// other accumulates of the same element type.
  void accumulate(const void* origin, std::size_t count, Elem e, RedOp op,
                  int target, std::size_t tdisp);
  /// Atomically fetches the previous target contents into `result` and
  /// applies the reduction (MPI_Get_accumulate). op = no_op is an atomic
  /// read.
  void get_accumulate(const void* origin, void* result, std::size_t count,
                      Elem e, RedOp op, int target, std::size_t tdisp);
  /// Derived-datatype accumulate: both sides are lowered to fragments
  /// (block lengths must be element-aligned) and the reduction applies
  /// elementwise, atomically per element.
  void accumulate(const void* origin, int ocount, const dt::Datatype& otype,
                  Elem e, RedOp op, int target, std::size_t tdisp,
                  int tcount, const dt::Datatype& ttype);
  /// Request-based accumulate (MPI_Raccumulate); accelerated ops only
  /// issue explicit-handle AMOs, fallback ops complete before returning.
  RmaRequest raccumulate(const void* origin, std::size_t count, Elem e,
                         RedOp op, int target, std::size_t tdisp);
  /// Single-element MPI_Fetch_and_op.
  void fetch_and_op(const void* origin, void* result, Elem e, RedOp op,
                    int target, std::size_t tdisp);
  /// Single-element MPI_Compare_and_swap; `result` receives the previous
  /// target value.
  void compare_and_swap(const void* origin, const void* compare, void* result,
                        Elem e, int target, std::size_t tdisp);
  /// Request-based single-element fetch-and-op: accelerated ops issue one
  /// explicit-handle AMO whose fetch result lands in `result` at completion
  /// (keep it alive until the request retires); fallback ops complete before
  /// returning.
  RmaRequest rfetch_and_op(const void* origin, void* result, Elem e, RedOp op,
                           int target, std::size_t tdisp);
  /// Request-based compare-and-swap; 8-byte types map to one explicit AMO,
  /// 4-byte types run the lock-based fallback eagerly.
  RmaRequest rcompare_and_swap(const void* origin, const void* compare,
                               void* result, Elem e, int target,
                               std::size_t tdisp);

  // --- notified access (put-with-notification) --------------------------------
  /// Collective. Arms this window for put_notify by allocating a per-rank
  /// notification ring of `capacity` records (first caller's capacity wins;
  /// call with matching values). Idempotent.
  void notify_enable(fabric::RankCtx& ctx, std::size_t capacity = 256);
  /// Contiguous put plus a sequenced notification record {tag, tdisp, len,
  /// source} delivered into the target's notification ring after the payload
  /// is remotely complete. Returns the first failure observed (ring-full
  /// overflow retries internally; a dead target retires as peer_dead).
  rdma::OpStatus put_notify(const void* origin, std::size_t len, int target,
                            std::size_t tdisp, std::uint64_t tag);
  /// Nonblocking: consumes and returns the oldest local record matching
  /// `tag` (kAnyNotifyTag matches all). False if none is pending.
  bool notify_probe(std::uint64_t tag, fabric::progress::NotifyRecord* out);
  /// Blocks (politely, via yield_check) until at least one matching record
  /// arrived; consumes up to `max` of them. `source` = -1 matches any
  /// origin. If every candidate source died first: with `status` non-null
  /// stores peer_dead and returns 0, else raises.
  std::size_t notify_waitsome(std::uint64_t tag,
                              fabric::progress::NotifyRecord* out,
                              std::size_t max, int source = -1,
                              rdma::OpStatus* status = nullptr);
  /// The underlying plane (null before notify_enable); fibers park on it
  /// through Scheduler::await_notify.
  fabric::progress::NotifyPlane* notify_plane();

  // --- diagnostics ---------------------------------------------------------------
  /// Number of proposal rounds the symmetric heap needed (allocated
  /// windows; 0 otherwise). For the ablation bench.
  int alloc_attempts() const;

  /// One polite spin iteration: yields, then raises if a peer rank failed.
  /// Every unbounded spin loop built on window memory (MCS lock, notified
  /// access) must call this per iteration (CLAUDE.md rule).
  void yield_check() const;

 private:
  struct Shared;
  struct DynCache;
  struct RankState;

  Win(std::shared_ptr<Shared> shared, int rank);

  static Win make_collective(fabric::RankCtx& ctx, WinConfig cfg,
                             const std::function<void(Shared&)>& init_leader,
                             const std::function<void(Shared&, int)>& init_rank);

  RankState& st() const;
  Shared& sh() const;
  rdma::Nic& nic() const;
  /// Raises unless the calling rank is inside an epoch granting access to
  /// `target`.
  void require_access(int target) const;
  /// Resolves (target, tdisp, len) to the descriptor + offset to use —
  /// trivial for static windows, cache-protocol lookup for dynamic ones.
  void resolve_target(int target, std::size_t tdisp, std::size_t len,
                      rdma::RegionDesc* desc, std::size_t* offset);
  /// Dynamic-window resolution: runs the descriptor-cache protocol
  /// (id-counter poll or invalidation check), refreshing the cache with
  /// one-sided reads when stale. `tdisp` is the absolute remote address.
  void resolve_dynamic(int target, std::size_t tdisp, std::size_t len,
                       rdma::RegionDesc* desc, std::size_t* offset);
  /// Re-reads the target's dynamic directory with the seqlock-style
  /// id / entries / id protocol.
  void refresh_dyn_cache(int target);

  /// Issues the fragments of a datatype transfer as implicit nonblocking
  /// NIC ops; `collect` non-null gathers explicit handles instead (rput).
  void issue_put(const void* origin, int ocount, const dt::Datatype& otype,
                 int target, std::size_t tdisp, int tcount,
                 const dt::Datatype& ttype, std::vector<rdma::Handle>* collect);
  void issue_get(void* origin, int ocount, const dt::Datatype& otype,
                 int target, std::size_t tdisp, int tcount,
                 const dt::Datatype& ttype, std::vector<rdma::Handle>* collect);

  /// Fallback accumulate protocol: lock-get-combine-put-unlock.
  void accumulate_fallback(const void* origin, void* fetch, std::size_t count,
                           Elem e, RedOp op, int target, std::size_t tdisp);
  void acc_lock_acquire(int target);
  void acc_lock_release(int target);

  /// Commits all outstanding operations of this rank remotely.
  void commit_all();
  /// Same, but returns the aggregated fault status instead of raising.
  rdma::OpStatus commit_all_checked();
  /// Routes a fault status through the window's ErrMode: ok is a no-op,
  /// errors_return records it for last_error(), errors_are_fatal raises.
  void handle_failure(rdma::OpStatus st, const char* what);

  rdma::OpStatus lock_impl(LockType type, int target);
  rdma::OpStatus unlock_impl(int target);
  rdma::OpStatus complete_impl();
  rdma::OpStatus wait_impl();
  /// Dead-holder revocation: called by lock spinners when the fault plan is
  /// armed; frees `target`'s local lock word if its recorded exclusive owner
  /// died mid-critical-section.
  void try_revoke_dead_owner(int target);

  std::shared_ptr<Shared> shared_;
  int rank_ = -1;
  std::unique_ptr<RankState> state_;
};

}  // namespace fompi::core

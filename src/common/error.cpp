#include "common/error.hpp"

namespace fompi {

const char* to_string(ErrClass ec) noexcept {
  switch (ec) {
    case ErrClass::internal:     return "FOMPI_ERR_INTERNAL";
    case ErrClass::arg:          return "FOMPI_ERR_ARG";
    case ErrClass::rank:         return "FOMPI_ERR_RANK";
    case ErrClass::win:          return "FOMPI_ERR_WIN";
    case ErrClass::rma_range:    return "FOMPI_ERR_RMA_RANGE";
    case ErrClass::rma_sync:     return "FOMPI_ERR_RMA_SYNC";
    case ErrClass::rma_conflict: return "FOMPI_ERR_RMA_CONFLICT";
    case ErrClass::rma_attach:   return "FOMPI_ERR_RMA_ATTACH";
    case ErrClass::type:         return "FOMPI_ERR_TYPE";
    case ErrClass::op:           return "FOMPI_ERR_OP";
    case ErrClass::truncate:     return "FOMPI_ERR_TRUNCATE";
    case ErrClass::pending:      return "FOMPI_ERR_PENDING";
    case ErrClass::no_mem:       return "FOMPI_ERR_NO_MEM";
    case ErrClass::timeout:      return "FOMPI_ERR_TIMEOUT";
    case ErrClass::cq:           return "FOMPI_ERR_CQ";
    case ErrClass::peer_dead:    return "FOMPI_ERR_PEER_DEAD";
    case ErrClass::data_loss:    return "FOMPI_ERR_DATA_LOSS";
  }
  return "FOMPI_ERR_UNKNOWN";
}

void raise(ErrClass ec, const std::string& what) { throw Error(ec, what); }

}  // namespace fompi

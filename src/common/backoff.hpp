// Exponential back-off for retry loops (lock acquisition, symmetric-heap
// allocation, PSCW spinning). The paper prescribes exponential back-off on
// all waits/retries to avoid congesting the target NIC.
#pragma once

#include <cstdint>
#include <thread>

#include "common/instr.hpp"

namespace fompi {

class Backoff {
 public:
  explicit Backoff(std::uint32_t max_spins = 1024) : max_(max_spins) {}

  /// One back-off step: yields at least once (single-core safety) and then
  /// spins with exponentially growing bound.
  void pause() noexcept {
    count(Op::retry);
    std::this_thread::yield();
    for (std::uint32_t i = 0; i < cur_; ++i) {
      // Dependency chain the optimizer cannot remove but that costs ~1ns.
      asm volatile("" ::: "memory");
    }
    if (cur_ < max_) cur_ *= 2;
  }

  void reset() noexcept { cur_ = 1; }

 private:
  std::uint32_t cur_ = 1;
  std::uint32_t max_;
};

}  // namespace fompi

#include "common/timing.hpp"

#include <algorithm>
#include <numeric>

namespace fompi {

Stats summarize(std::vector<double>& samples) {
  Stats s;
  if (samples.empty()) return s;
  std::sort(samples.begin(), samples.end());
  s.min = samples.front();
  s.max = samples.back();
  const std::size_t n = samples.size();
  s.median = (n % 2 == 1) ? samples[n / 2]
                          : 0.5 * (samples[n / 2 - 1] + samples[n / 2]);
  s.mean = std::accumulate(samples.begin(), samples.end(), 0.0) /
           static_cast<double>(n);
  return s;
}

}  // namespace fompi

// Deterministic pseudo-random numbers (xoshiro256**).
//
// Workload generators and retry protocols need reproducible randomness that
// is identical across runs and independent of the standard library's
// distribution implementations.
#pragma once

#include <cstdint>

namespace fompi {

/// xoshiro256** 1.0 by Blackman & Vigna (public domain algorithm),
/// seeded via splitmix64 so that any 64-bit seed gives a good state.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) {
    std::uint64_t x = seed;
    for (auto& word : s_) word = splitmix64(x);
  }

  std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound) with rejection to avoid modulo bias.
  std::uint64_t below(std::uint64_t bound) noexcept {
    if (bound <= 1) return 0;
    const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % bound);
    std::uint64_t v = next();
    while (v >= limit) v = next();
    return v % bound;
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  static std::uint64_t splitmix64(std::uint64_t& x) noexcept {
    x += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  std::uint64_t s_[4];
};

}  // namespace fompi

// Operation-count instrumentation.
//
// The paper reports x86 instruction counts for the critical paths (78 for
// flush, 173 for put/get fast path). We cannot count retired instructions in
// a portable library, so we count *architectural events* on the critical
// path instead: transport operations, atomics, branches taken in protocol
// code, and bytes copied. bench_instr reports these per public call, which
// plays the same role: showing that the MPI layering adds only a thin,
// constant-size veneer over the raw transport.
#pragma once

#include <array>
#include <cstdint>

namespace fompi {

enum class Op : std::uint32_t {
  transport_put,     ///< one NIC put / shared-memory store batch issued
  transport_get,     ///< one NIC get / shared-memory load batch issued
  transport_amo,     ///< one remote atomic issued
  local_atomic,      ///< one CPU atomic on shared protocol state
  memory_fence,      ///< one full fence (mfence equivalent)
  bulk_sync,         ///< one NIC bulk completion (gsync equivalent)
  protocol_branch,   ///< one protocol decision branch
  validation_check,  ///< one argument/epoch validation check
  bytes_copied,      ///< payload bytes moved (counted in bytes)
  retry,             ///< one back-off retry (lock/alloc protocols)
  rkey_cache_hit,    ///< rkey resolved from the NIC cache (no registry lock)
  rkey_cache_miss,   ///< rkey resolve took the registry's shared lock
  pool_grow,         ///< NIC completion/staging pool grew (heap allocation)
  flatten_cache_hit,   ///< datatype lowering served from the cached blocks
  flatten_cache_build, ///< one-time tree walk at datatype construction
  vectored_op,       ///< one vectored (multi-fragment) NIC op issued
  packed_bytes,      ///< bytes staged through the pack/unpack protocol
  fault_injected,    ///< one fault injected by the FaultPlan (any kind)
  op_retried,        ///< one NIC-level retransmission of a faulted op
  op_failed,         ///< one op retired with a failure status (budget spent)
  doorbell_ring,     ///< one coalesced doorbell rung (covers >= 1 descriptors)
  batched_op,        ///< one op enqueued behind a coalesced doorbell
  channel_stripe,    ///< one BTE transfer striped across NIC channels
  adapt_retune,      ///< adaptive tuner moved a protocol threshold
  fiber_spawn,       ///< one fiber adopted by a progress-engine scheduler
  fiber_switch,      ///< one fiber resume (continuation-frame re-entry)
  notify_posted,     ///< one put-with-notification record committed
  notify_consumed,   ///< one notify record drained out of the ring
  notify_retry,      ///< one overflow-to-retry pass on a full notify ring
  kv_cache_hit,      ///< KV get served by the epoch-validated client cache
  kv_cache_miss,     ///< KV get took the full one-sided versioned read
  kv_read_retry,     ///< KV seqlock read retried (locked / version moved)
  kv_failover,       ///< KV shard rerouted to its replica (owner dead)
  kv_retry_routing,  ///< KV op raced a reconfiguration; retired typed retry
  kv_scrub_cell,     ///< one owner/replica cell pair examined by the scrub
  kv_scrub_repair,   ///< one diverged cell repaired by the scrub
  kv_drain_chunk,    ///< one re-replication chunk drained (frozen image get)
  kv_recovery,       ///< one completed heal() pass (any outcome)
  kCount,
};

const char* to_string(Op op) noexcept;

/// Inverse of to_string: linear scan over all Op values. Returns false for
/// unknown names (including "unknown" itself). With the exhaustive
/// round-trip test this guarantees every Op has a distinct name string.
bool op_from_string(const char* name, Op* out) noexcept;

/// Per-thread counter block. Each rank thread owns one; benches snapshot it
/// around a call to attribute costs to that call.
class OpCounters {
 public:
  void add(Op op, std::uint64_t n = 1) noexcept {
    c_[static_cast<std::size_t>(op)] += n;
  }
  std::uint64_t get(Op op) const noexcept {
    return c_[static_cast<std::size_t>(op)];
  }
  void reset() noexcept { c_ = {}; }

  /// Difference of two snapshots (this - earlier).
  OpCounters since(const OpCounters& earlier) const noexcept {
    OpCounters d;
    for (std::size_t i = 0; i < c_.size(); ++i) d.c_[i] = c_[i] - earlier.c_[i];
    return d;
  }

  /// Sum of all non-byte counters: the "op count" proxy for instructions.
  std::uint64_t total_ops() const noexcept;

 private:
  std::array<std::uint64_t, static_cast<std::size_t>(Op::kCount)> c_{};
};

/// Counters of the calling thread (each rank thread gets its own block).
OpCounters& op_counters() noexcept;

/// Convenience: count an event on the calling thread. Compiled in always;
/// the increment is a single thread-local add and is itself part of the
/// measured software path.
inline void count(Op op, std::uint64_t n = 1) noexcept { op_counters().add(op, n); }

}  // namespace fompi

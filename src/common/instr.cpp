#include "common/instr.hpp"

#include <cstring>

namespace fompi {

const char* to_string(Op op) noexcept {
  switch (op) {
    case Op::transport_put:    return "transport_put";
    case Op::transport_get:    return "transport_get";
    case Op::transport_amo:    return "transport_amo";
    case Op::local_atomic:     return "local_atomic";
    case Op::memory_fence:     return "memory_fence";
    case Op::bulk_sync:        return "bulk_sync";
    case Op::protocol_branch:  return "protocol_branch";
    case Op::validation_check: return "validation_check";
    case Op::bytes_copied:     return "bytes_copied";
    case Op::retry:            return "retry";
    case Op::rkey_cache_hit:   return "rkey_cache_hit";
    case Op::rkey_cache_miss:  return "rkey_cache_miss";
    case Op::pool_grow:        return "pool_grow";
    case Op::flatten_cache_hit:   return "flatten_cache_hit";
    case Op::flatten_cache_build: return "flatten_cache_build";
    case Op::vectored_op:      return "vectored_op";
    case Op::packed_bytes:     return "packed_bytes";
    case Op::fault_injected:   return "fault_injected";
    case Op::op_retried:       return "op_retried";
    case Op::op_failed:        return "op_failed";
    case Op::doorbell_ring:    return "doorbell_ring";
    case Op::batched_op:       return "batched_op";
    case Op::channel_stripe:   return "channel_stripe";
    case Op::adapt_retune:     return "adapt_retune";
    case Op::fiber_spawn:      return "fiber_spawn";
    case Op::fiber_switch:     return "fiber_switch";
    case Op::notify_posted:    return "notify_posted";
    case Op::notify_consumed:  return "notify_consumed";
    case Op::notify_retry:     return "notify_retry";
    case Op::kv_cache_hit:     return "kv_cache_hit";
    case Op::kv_cache_miss:    return "kv_cache_miss";
    case Op::kv_read_retry:    return "kv_read_retry";
    case Op::kv_failover:      return "kv_failover";
    case Op::kv_retry_routing: return "kv_retry_routing";
    case Op::kv_scrub_cell:    return "kv_scrub_cell";
    case Op::kv_scrub_repair:  return "kv_scrub_repair";
    case Op::kv_drain_chunk:   return "kv_drain_chunk";
    case Op::kv_recovery:      return "kv_recovery";
    case Op::kCount:           break;
  }
  return "unknown";
}

bool op_from_string(const char* name, Op* out) noexcept {
  for (std::uint32_t i = 0; i < static_cast<std::uint32_t>(Op::kCount); ++i) {
    const Op op = static_cast<Op>(i);
    const char* s = to_string(op);
    if (std::strcmp(s, name) == 0 && std::strcmp(s, "unknown") != 0) {
      if (out != nullptr) *out = op;
      return true;
    }
  }
  return false;
}

std::uint64_t OpCounters::total_ops() const noexcept {
  std::uint64_t t = 0;
  for (std::size_t i = 0; i < c_.size(); ++i) {
    if (i == static_cast<std::size_t>(Op::bytes_copied)) continue;
    if (i == static_cast<std::size_t>(Op::packed_bytes)) continue;
    t += c_[i];
  }
  return t;
}

OpCounters& op_counters() noexcept {
  thread_local OpCounters counters;
  return counters;
}

}  // namespace fompi

// Cache-line aligned owning buffer used for window memory.
//
// RDMA registration requires stable, suitably aligned storage; DMAPP AMOs
// require 8-byte alignment and we additionally align to the cache line to
// avoid false sharing between protocol variables.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <new>

#include "common/error.hpp"

namespace fompi {

inline constexpr std::size_t kCacheLine = 64;

/// Owning, cache-line aligned, zero-initialized byte buffer.
class AlignedBuffer {
 public:
  AlignedBuffer() = default;

  explicit AlignedBuffer(std::size_t size) : size_(size) {
    if (size_ == 0) return;
    const std::size_t rounded = (size_ + kCacheLine - 1) / kCacheLine * kCacheLine;
    void* p = std::aligned_alloc(kCacheLine, rounded);
    if (p == nullptr) raise(ErrClass::no_mem, "aligned_alloc failed");
    std::memset(p, 0, rounded);
    data_.reset(static_cast<std::byte*>(p));
  }

  std::byte* data() noexcept { return data_.get(); }
  const std::byte* data() const noexcept { return data_.get(); }
  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }

 private:
  struct FreeDeleter {
    void operator()(std::byte* p) const noexcept { std::free(p); }
  };
  std::unique_ptr<std::byte, FreeDeleter> data_;
  std::size_t size_ = 0;
};

}  // namespace fompi

// Wall-clock timing and calibrated busy-waiting.
//
// The paper measures with the cycle-accurate RDTSC counter; we use
// steady_clock (nanosecond resolution on Linux) and provide a calibrated
// spin-wait used to inject modeled network latencies into the real code
// path. All spin loops yield: the test machine may have a single hardware
// thread, and a non-yielding spinner would starve its peer rank.
#pragma once

#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

namespace fompi {

using Clock = std::chrono::steady_clock;

/// Nanoseconds since an arbitrary epoch.
inline std::uint64_t now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          Clock::now().time_since_epoch())
          .count());
}

/// Simple start/elapsed timer.
class Timer {
 public:
  Timer() : start_(now_ns()) {}
  void restart() noexcept { start_ = now_ns(); }
  std::uint64_t elapsed_ns() const noexcept { return now_ns() - start_; }
  double elapsed_us() const noexcept {
    return static_cast<double>(elapsed_ns()) / 1e3;
  }

 private:
  std::uint64_t start_;
};

/// Busy-wait for `ns` nanoseconds. Model-time waits have no peer
/// dependency (they only let virtual time pass), so short waits busy-spin
/// for timing fidelity; longer waits yield so that co-scheduled rank
/// threads on a small machine still make progress.
inline void spin_for_ns(std::uint64_t ns) noexcept {
  if (ns == 0) return;
  constexpr std::uint64_t kYieldThreshold = 5'000;  // 5 us
  const std::uint64_t deadline = now_ns() + ns;
  if (ns <= kYieldThreshold) {
    while (now_ns() < deadline) {
      asm volatile("" ::: "memory");
    }
    return;
  }
  while (now_ns() < deadline) std::this_thread::yield();
}

/// Busy-wait until an absolute now_ns() deadline. For callers that already
/// anchored the deadline to a clock read: re-anchoring through spin_for_ns
/// would cost an extra clock read per op (~35 ns on this host) and drift
/// modeled time by it. Same yield policy as spin_for_ns.
inline void spin_until_ns(std::uint64_t deadline) noexcept {
  constexpr std::uint64_t kYieldThreshold = 5'000;  // 5 us
  std::uint64_t t = now_ns();
  while (t < deadline) {
    if (deadline - t > kYieldThreshold) std::this_thread::yield();
    t = now_ns();
  }
}

/// Robust summary statistics over a sample of measurements.
struct Stats {
  double min = 0, median = 0, mean = 0, max = 0;
};

/// Computes summary statistics; sorts `samples` in place.
Stats summarize(std::vector<double>& samples);

}  // namespace fompi

// Error handling for the foMPI-R library.
//
// The MPI standard reports errors through error classes; we use typed
// exceptions carrying an error class, which unit tests can assert on.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace fompi {

/// Error classes, modeled on the MPI error classes relevant to RMA.
enum class ErrClass : std::uint32_t {
  internal,       ///< implementation bug (assertion-like)
  arg,            ///< invalid argument value
  rank,           ///< rank out of range
  win,            ///< invalid window / window state
  rma_range,      ///< access outside the exposed region
  rma_sync,       ///< synchronization call out of order (epoch misuse)
  rma_conflict,   ///< conflicting accesses detected
  rma_attach,     ///< dynamic window attach/detach misuse
  type,           ///< invalid or unsupported datatype use
  op,             ///< invalid reduction op for the call
  truncate,       ///< receive buffer too small (two-sided baseline)
  pending,        ///< operation still pending where completion required
  no_mem,         ///< registration/allocation failure
  timeout,        ///< NIC timeout / retry budget exhausted (fault model)
  cq,             ///< completion-queue error reported by the NIC
  peer_dead,      ///< target rank failed (fabric liveness epoch)
  data_loss,      ///< every replica of the addressed data is on dead ranks
};

/// Human-readable name of an error class.
const char* to_string(ErrClass ec) noexcept;

/// Exception type thrown by all foMPI-R entry points on misuse.
class Error : public std::runtime_error {
 public:
  Error(ErrClass ec, std::string what)
      : std::runtime_error(std::string(to_string(ec)) + ": " + std::move(what)),
        ec_(ec) {}

  ErrClass err_class() const noexcept { return ec_; }

 private:
  ErrClass ec_;
};

[[noreturn]] void raise(ErrClass ec, const std::string& what);

/// Thrown by the simulated NIC when a FaultPlan kills the issuing rank.
/// run_ranks() treats it specially: the rank is marked dead in the fabric
/// liveness table and, under errors_return, the fleet is NOT aborted.
class RankKilledError : public Error {
 public:
  explicit RankKilledError(int rank)
      : Error(ErrClass::peer_dead, "rank killed by fault plan"), rank_(rank) {}
  int rank() const noexcept { return rank_; }

 private:
  int rank_;
};

/// Precondition check used on public entry points. Kept on in release
/// builds: argument validation is part of the library contract and its cost
/// is counted by the instruction-count benches.
#define FOMPI_REQUIRE(cond, ec, msg)             \
  do {                                           \
    if (!(cond)) ::fompi::raise((ec), (msg));    \
  } while (0)

/// Internal invariant check (implementation bugs, not user misuse).
#define FOMPI_ASSERT(cond, msg) \
  FOMPI_REQUIRE(cond, ::fompi::ErrClass::internal, msg)

}  // namespace fompi
